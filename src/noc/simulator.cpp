#include "noc/simulator.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <unordered_map>

#include "util/log.hpp"

namespace snnmap::noc {

const char* to_string(SelectionStrategy selection) noexcept {
  switch (selection) {
    case SelectionStrategy::kFirstCandidate: return "first-candidate";
    case SelectionStrategy::kBufferLevel: return "buffer-level";
  }
  return "?";
}

NocSimulator::NocSimulator(Topology topology, NocConfig config)
    : topology_(std::move(topology)), config_(config) {
  if (config_.buffer_depth == 0) {
    throw std::invalid_argument(
        "NocSimulator: buffer_depth must be >= 1 (a zero-depth FIFO could "
        "never accept a flit, so no packet would ever move)");
  }
  if (config_.max_cycles == 0) {
    throw std::invalid_argument(
        "NocSimulator: max_cycles must be >= 1 (a zero-cycle budget could "
        "never simulate any traffic)");
  }
  // Flat per-port geometry: for global port index port_base_[r] + o,
  // neighbor_ holds the adjacent router and reverse_port_ the input-port
  // index at that neighbor through which flits sent from r arrive.
  const std::uint32_t n = topology_.router_count();
  port_base_.resize(n + 1);
  port_base_[0] = 0;
  for (RouterId r = 0; r < n; ++r) {
    port_base_[r + 1] = port_base_[r] + topology_.port_count(r);
  }
  neighbor_.resize(port_base_[n]);
  reverse_port_.resize(port_base_[n]);
  for (RouterId r = 0; r < n; ++r) {
    const std::uint32_t ports = topology_.port_count(r);
    for (PortId o = 0; o < ports; ++o) {
      const RouterId nb = topology_.neighbor(r, o);
      std::uint32_t back = static_cast<std::uint32_t>(-1);
      for (PortId p = 0; p < topology_.port_count(nb); ++p) {
        if (topology_.neighbor(nb, p) == r) {
          back = p;
          break;
        }
      }
      if (back == static_cast<std::uint32_t>(-1)) {
        throw std::logic_error("NocSimulator: asymmetric topology link");
      }
      neighbor_[port_base_[r] + o] = nb;
      reverse_port_[port_base_[r] + o] = back;
    }
  }
  tile_router_.resize(topology_.tile_count());
  for (TileId t = 0; t < topology_.tile_count(); ++t) {
    tile_router_[t] = topology_.router_of_tile(t);
  }
}

NocRunResult NocSimulator::run(std::vector<SpikePacketEvent> traffic) {
  NocRunResult result;
  NocStats& stats = result.stats;

  // Events with identical keys keep introsort's (deterministic) tie
  // permutation: sequence numbers are assigned in this order, so the golden
  // streams pin it.  Do not replace with a keyed/stable sort.
  std::sort(traffic.begin(), traffic.end(),
            [](const SpikePacketEvent& a, const SpikePacketEvent& b) {
              if (a.emit_cycle != b.emit_cycle)
                return a.emit_cycle < b.emit_cycle;
              if (a.source_tile != b.source_tile)
                return a.source_tile < b.source_tile;
              return a.source_neuron < b.source_neuron;
            });

  const std::uint32_t n = topology_.router_count();
  const auto& table = topology_.route_table();
  if (table.empty()) {
    // Only reachable with >= 255 ports on one router; such fabrics are far
    // beyond anything the cycle loop is meant for.
    throw std::invalid_argument(
        "NocSimulator: topology has no packed route table (router with >= "
        "255 ports)");
  }

  std::vector<Router> routers;
  routers.reserve(n);
  for (RouterId r = 0; r < n; ++r) {
    routers.emplace_back(r, topology_.port_count(r), config_.buffer_depth);
  }

  // Per-source-neuron sequence counters: a flat array when the ids are
  // reasonably dense (the mapping flow emits graph-indexed neurons), with a
  // hashed fallback for pathological sparse id spaces.
  std::uint32_t max_neuron = 0;
  std::size_t total_dests = 0;
  for (const auto& ev : traffic) {
    max_neuron = std::max(max_neuron, ev.source_neuron);
    total_dests += ev.dest_tiles.size();
  }
  std::vector<std::uint32_t> seq_flat;
  std::unordered_map<std::uint32_t, std::uint32_t> seq_map;
  const bool dense_neurons =
      static_cast<std::uint64_t>(max_neuron) <
      static_cast<std::uint64_t>(traffic.size()) * 4 + 1024;
  if (dense_neurons) {
    seq_flat.assign(static_cast<std::size_t>(max_neuron) + 1, 0);
  }
  const auto sequence_of = [&](std::uint32_t neuron) -> std::uint32_t& {
    return dense_neurons ? seq_flat[neuron] : seq_map[neuron];
  };

  // Pooled destination arena: every in-flight flit's destination set is a
  // (begin, count) range.  Forks append the forked subset and shrink the
  // head's range in place; dead ranges are reclaimed by compaction once
  // they dominate the pool.
  std::vector<TileId> arena;
  arena.reserve(total_dests * 2);
  std::size_t arena_live = 0;
  std::vector<TileId> match;  // dests served via the current output port
  std::vector<TileId> keep;   // dests staying with the head flit
  if (config_.collect_delivered) {
    // Exactly one delivered copy per (event, destination) on a drained run.
    result.delivered.reserve(total_dests);
  }

  // Active-router worklist: one bit per router, scanned in id order so the
  // arbitration order (and therefore every golden stream) matches the full
  // per-router scan exactly, while idle routers cost nothing.
  std::vector<std::uint64_t> active((n + 63) / 64, 0);
  const auto mark_active = [&](RouterId r) {
    active[r >> 6] |= 1ULL << (r & 63);
  };

  struct StagedMove {
    RouterId to_router;
    std::uint32_t to_port;
    Flit flit;
  };
  std::vector<StagedMove> staged;
  // staged_count[port_base_[r] + p] = arrivals already bound for that input
  // FIFO this cycle; reset via the touched list, not a full sweep.
  std::vector<std::uint32_t> staged_count(port_base_[n], 0);
  std::vector<std::uint32_t> staged_touched;
  // Flit traversals per directed link (router, out port).
  std::vector<std::uint64_t> link_flits(port_base_[n], 0);

  std::size_t next_event = 0;
  std::uint64_t now = 0;
  std::size_t in_flight = 0;

  const auto make_flit = [&](const SpikePacketEvent& ev, const TileId* dests,
                             std::uint32_t count) {
    Flit f;
    f.source_neuron = ev.source_neuron;
    f.source_tile = ev.source_tile;
    f.emit_cycle = ev.emit_cycle;
    f.emit_step = ev.emit_step;
    f.sequence = sequence_of(ev.source_neuron);
    f.dest_begin = static_cast<std::uint32_t>(arena.size());
    f.dest_count = count;
    arena.insert(arena.end(), dests, dests + count);
    arena_live += count;
    f.payload = aer_encode({ev.source_neuron & kAerMaxNeuron,
                            ev.source_tile & kAerMaxCrossbar,
                            static_cast<std::uint32_t>(ev.emit_cycle)});
    return f;
  };

  while (true) {
    // ---- 1. Inject all packets emitted this cycle.
    while (next_event < traffic.size() &&
           traffic[next_event].emit_cycle <= now) {
      const SpikePacketEvent& ev = traffic[next_event];
      if (ev.dest_tiles.empty()) {
        throw std::invalid_argument(
            "NocSimulator: packet event with no destinations");
      }
      if (ev.source_tile >= tile_router_.size()) {
        throw std::out_of_range("Topology: tile id out of range");
      }
      for (const TileId dest : ev.dest_tiles) {
        if (dest >= tile_router_.size()) {
          throw std::out_of_range("Topology: tile id out of range");
        }
      }
      const RouterId src_router = tile_router_[ev.source_tile];
      Router& src = routers[src_router];
      ++stats.packets_injected;
      if (config_.multicast) {
        src.push(src.port_count(),
                 make_flit(ev, ev.dest_tiles.data(),
                           static_cast<std::uint32_t>(ev.dest_tiles.size())));
        ++stats.flits_injected;
        stats.global_energy_pj += config_.energy.aer_codec_pj;
        ++in_flight;
      } else {
        // Source-replicated unicast: one independent copy per destination.
        for (const TileId dest : ev.dest_tiles) {
          src.push(src.port_count(), make_flit(ev, &dest, 1));
          ++stats.flits_injected;
          stats.global_energy_pj += config_.energy.aer_codec_pj;
          ++in_flight;
        }
      }
      ++sequence_of(ev.source_neuron);
      mark_active(src_router);
      ++next_event;
    }

    if (in_flight == 0) {
      if (next_event >= traffic.size()) break;  // drained
      // Fast-forward idle gaps between traffic bursts.
      now = traffic[next_event].emit_cycle;
      continue;
    }
    if (now >= config_.max_cycles) {
      stats.drained = false;
      util::log_warn("NocSimulator: max_cycles reached with ", in_flight,
                     " flits in flight");
      break;
    }

    // Compact the destination arena once dead ranges dominate it.
    if (arena.size() > 4096 && arena.size() > 4 * (arena_live + 1)) {
      std::vector<TileId> compacted;
      compacted.reserve(arena_live);
      for (Router& router : routers) {
        router.for_each_flit([&](Flit& f) {
          const auto begin = static_cast<std::uint32_t>(compacted.size());
          compacted.insert(compacted.end(), arena.begin() + f.dest_begin,
                           arena.begin() + f.dest_begin + f.dest_count);
          f.dest_begin = begin;
        });
      }
      arena = std::move(compacted);
    }

    // ---- 2. Arbitration: each output port of each router moves <= 1 flit.
    staged.clear();
    for (const std::uint32_t idx : staged_touched) staged_count[idx] = 0;
    staged_touched.clear();

    for (std::size_t w = 0; w < active.size(); ++w) {
      std::uint64_t bits = active[w];
      while (bits != 0) {
        const auto r = static_cast<RouterId>((w << 6) +
                                             std::countr_zero(bits));
        bits &= bits - 1;
        Router& router = routers[r];
        const std::uint32_t ports = router.port_count();
        const std::uint32_t base = port_base_[r];
        const Topology::RouteEntry* route_row =
            table.data() + static_cast<std::size_t>(r) * n;

        for (std::uint32_t out = 0; out <= ports; ++out) {
          const bool local = out == ports;
          RouterId nb = 0;
          std::uint32_t nb_port = 0;
          std::uint32_t nb_slot = 0;
          if (!local) {
            nb = neighbor_[base + out];
            nb_port = reverse_port_[base + out];
            nb_slot = port_base_[nb] + nb_port;
            // Backpressure is per output this cycle; check it once instead
            // of per input.
            if (!routers[nb].can_accept(nb_port, staged_count[nb_slot])) {
              continue;
            }
          }
          // Round-robin over the non-empty input queues for this output:
          // rotating the occupancy mask by the round-robin pointer makes
          // ascending bit positions enumerate inputs in (start + k) %
          // inputs order (inputs <= 64 and all mask bits sit below
          // `inputs`, so the wrap around bit 63 is exactly the wrap around
          // `inputs`).
          const std::uint32_t start = router.rr_pointer(out);
          std::uint64_t pending = std::rotr(router.occupied_mask(), start);
          while (pending != 0) {
            const std::uint32_t in =
                (start + static_cast<std::uint32_t>(
                             std::countr_zero(pending))) & 63U;
            pending &= pending - 1;
            Flit& head = router.head(in);
            if (head.dest_count == 0) continue;  // fully served, pops below

            const auto deliver = [&](TileId dest) {
              DeliveredSpike d;
              d.source_neuron = head.source_neuron;
              d.source_tile = head.source_tile;
              d.dest_tile = dest;
              d.emit_cycle = head.emit_cycle;
              d.emit_step = head.emit_step;
              d.recv_cycle = now + 1;
              d.sequence = head.sequence;
              if (config_.collect_delivered) {
                result.delivered.push_back(d);
              }
              ++stats.copies_delivered;
              stats.latency_cycles.add(static_cast<double>(d.latency()));
              stats.max_latency_cycles =
                  std::max(stats.max_latency_cycles, d.latency());
            };
            const auto charge_ejection = [&] {
              ++stats.router_traversals;
              stats.global_energy_pj +=
                  config_.energy.router_flit_pj + config_.energy.aer_codec_pj;
            };
            // Stages `copy` through this output and charges the hop.
            const auto forward = [&](const Flit& copy) {
              staged.push_back({nb, nb_port, copy});
              if (staged_count[nb_slot]++ == 0) {
                staged_touched.push_back(nb_slot);
              }
              ++in_flight;
              ++stats.link_hops;
              ++stats.router_traversals;
              ++link_flits[base + out];
              stats.global_energy_pj +=
                  config_.energy.link_hop_pj + config_.energy.router_flit_pj;
            };

            if (head.dest_count == 1) {
              // Single-destination fast path: no subset to partition, and
              // the flit's arena range transfers to the forwarded copy
              // untouched.  Also the only case where the adaptive turn
              // models leave a choice to the selection strategy.
              const TileId dest = arena[head.dest_begin];
              const RouterId dst_router = tile_router_[dest];
              if (dst_router == r) {
                if (!local) continue;
                deliver(dest);
                charge_ejection();
                --arena_live;
              } else {
                if (local) continue;
                const Topology::RouteEntry& e = route_row[dst_router];
                std::uint32_t chosen = e.port[0];
                if (e.count > 1) {
                  // Selection strategy: pick among the turn model's legal
                  // candidates.
                  if (config_.selection ==
                      SelectionStrategy::kFirstCandidate) {
                    for (std::uint32_t c = 0; c < e.count; ++c) {
                      const std::uint32_t cand = base + e.port[c];
                      const std::uint32_t cand_slot =
                          port_base_[neighbor_[cand]] + reverse_port_[cand];
                      if (routers[neighbor_[cand]].can_accept(
                              reverse_port_[cand], staged_count[cand_slot])) {
                        chosen = e.port[c];
                        break;
                      }
                    }
                  } else {  // kBufferLevel: most free downstream (ties: 1st)
                    std::size_t best_free = 0;
                    for (std::uint32_t c = 0; c < e.count; ++c) {
                      const std::uint32_t cand = base + e.port[c];
                      const std::uint32_t cand_port = reverse_port_[cand];
                      const std::size_t used =
                          routers[neighbor_[cand]].queue_size(cand_port) +
                          staged_count[port_base_[neighbor_[cand]] +
                                       cand_port];
                      const std::size_t free =
                          used >= config_.buffer_depth
                              ? 0
                              : config_.buffer_depth - used;
                      if (free > best_free) {
                        best_free = free;
                        chosen = e.port[c];
                      }
                    }
                  }
                }
                if (chosen != out) continue;
                forward(head);  // range ownership moves to the copy
              }
              head.dest_count = 0;
              router.advance_rr(out);
              break;  // this output port is used for this cycle
            }

            // Multi-destination flit: partition the remaining dests against
            // this output port — local ejections when out is the local
            // port, otherwise remote dests routed through out.  Multicast
            // always takes each destination's first candidate, so the
            // partition is a pure table scan.
            match.clear();
            keep.clear();
            const TileId* dests = arena.data() + head.dest_begin;
            for (std::uint32_t d = 0; d < head.dest_count; ++d) {
              const TileId dest = dests[d];
              const RouterId dst_router = tile_router_[dest];
              const bool served = dst_router == r
                                      ? local
                                      : !local &&
                                            route_row[dst_router].port[0] ==
                                                out;
              (served ? match : keep).push_back(dest);
            }
            if (match.empty()) continue;

            if (local) {
              // Deliver every destination attached here (one tile per
              // router).
              for (const TileId dest : match) deliver(dest);
              charge_ejection();
              arena_live -= match.size();
            } else {
              Flit copy = head;
              if (keep.empty()) {
                // Whole set forwards through one port: transfer the range.
              } else {
                copy.dest_begin = static_cast<std::uint32_t>(arena.size());
                copy.dest_count = static_cast<std::uint32_t>(match.size());
                arena.insert(arena.end(), match.begin(), match.end());
              }
              forward(copy);
            }
            // Served destinations leave the head flit (order preserved);
            // it pops once empty.
            if (!keep.empty()) {
              std::copy(keep.begin(), keep.end(),
                        arena.begin() + head.dest_begin);
            }
            head.dest_count = static_cast<std::uint32_t>(keep.size());
            router.advance_rr(out);
            break;  // this output port is used for this cycle
          }
        }
        // Pop head flits whose destinations have all been served, and
        // retire fully drained routers from the worklist.
        std::uint64_t occupied = router.occupied_mask();
        while (occupied != 0) {
          const auto in =
              static_cast<std::uint32_t>(std::countr_zero(occupied));
          occupied &= occupied - 1;
          if (router.head(in).dest_count == 0) {
            router.pop(in);
            --in_flight;
          }
        }
        if (router.all_queues_empty()) {
          active[w] &= ~(1ULL << (r & 63));
        }
      }
    }

    // ---- 3. Commit staged inter-router moves.
    for (const StagedMove& move : staged) {
      routers[move.to_router].push(move.to_port, move.flit);
      mark_active(move.to_router);
    }

    ++now;
  }

  stats.duration_cycles = now;
  stats.link_flits.clear();
  for (RouterId r = 0; r < n; ++r) {
    for (std::uint32_t o = 0; o < topology_.port_count(r); ++o) {
      const std::uint64_t flits = link_flits[port_base_[r] + o];
      if (flits == 0) continue;
      stats.link_flits.emplace_back(
          (static_cast<std::uint64_t>(r) << 32) | neighbor_[port_base_[r] + o],
          flits);
    }
  }
  std::sort(stats.link_flits.begin(), stats.link_flits.end());
  if (config_.collect_delivered) {
    result.snn = compute_snn_metrics(result.delivered);
  }
  return result;
}

}  // namespace snnmap::noc
