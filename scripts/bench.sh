#!/usr/bin/env bash
# Simulator perf tracking: runs the BM_NocSimulator, BM_SnnSimulator,
# BM_CoSimulator, BM_WindowEnergy/energy-accounting, BM_FaultedNoc and
# BM_TraceOverhead suites (Release) and writes BENCH_noc.json /
# BENCH_snn.json / BENCH_cosim.json / BENCH_energy.json /
# BENCH_faults.json / BENCH_obs.json at the repo root so the
# simulated-packets/sec, simulated-ms/sec, co-sim steps/sec,
# energy-accounting-overhead, fault-injection-overhead and
# observability-overhead trajectories are recorded PR over PR.
#
#   scripts/bench.sh [extra google-benchmark flags...]
#   scripts/bench.sh --check [extra google-benchmark flags...]
#
# --check runs the same suites into a scratch directory and gates them
# against the committed BENCH_*.json via scripts/bench_gate.py: any
# throughput counter (items_per_second or *_per_sec) more than 15% below
# its committed value fails the script.  Because a shared VM's effective
# clock swings between measurement windows (±20-25% observed here on a
# minutes timescale), a failed gate triggers full re-measurements — up to
# BENCH_CHECK_ATTEMPTS (default 3) — and the gate takes the best value per
# counter across all attempts: a real regression is slow in every window
# and still fails, a slow window alone does not.  The committed files are
# left untouched in this mode (the *_OUT overrides are ignored).
#
# Requires Google Benchmark (the script aborts with a notice when the
# library is absent and the *_sim_benchmarks targets were not generated).
set -euo pipefail
cd "$(dirname "$0")/.."

CHECK=0
if [[ "${1:-}" == "--check" ]]; then
  CHECK=1
  shift
fi

BUILD_DIR=${BUILD_DIR:-build-release}
JOBS=${JOBS:-$(nproc)}

configure_log=$(cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=Release \
  -DSNNMAP_BUILD_TESTS=OFF \
  -DSNNMAP_BUILD_EXAMPLES=OFF 2>&1) \
  || { printf '%s\n' "$configure_log" >&2; exit 1; }
printf '%s\n' "$configure_log"
# bench/CMakeLists.txt prints this notice and skips the benchmark targets;
# abort up front so the build step below only ever fails on real compile
# errors (never on 'unknown target', never falling back to stale binaries).
if grep -q "Google Benchmark not found" <<<"$configure_log"; then
  echo "benchmark targets not generated (Google Benchmark missing?)" >&2
  exit 1
fi
cmake --build "$BUILD_DIR" -j "$JOBS" \
  --target noc_sim_benchmarks --target snn_sim_benchmarks \
  --target cosim_benchmarks --target energy_benchmarks \
  --target fault_benchmarks --target obs_benchmarks

run_suite() {
  local binary=$1
  local out=$2
  shift 2
  if [[ ! -x "$BUILD_DIR/bench/$binary" ]]; then
    echo "$binary was not built (Google Benchmark missing?)" >&2
    exit 1
  fi
  "$BUILD_DIR/bench/$binary" \
    --benchmark_min_time=2 \
    --benchmark_out="$out" \
    --benchmark_out_format=json \
    "$@"
  # A suite that ran but produced no (or an empty) JSON would silently hold
  # the trajectory at its previous value; fail loudly instead.
  if [[ ! -s "$out" ]]; then
    echo "$binary did not produce $out" >&2
    exit 1
  fi
  echo "wrote $out"
}

# Runs every suite, writing the six BENCH_*.json files into $1.
run_all_suites() {
  local out_dir=$1
  shift
  run_suite noc_sim_benchmarks "$out_dir/BENCH_noc.json" "$@"
  run_suite snn_sim_benchmarks "$out_dir/BENCH_snn.json" "$@"
  run_suite cosim_benchmarks "$out_dir/BENCH_cosim.json" "$@"
  run_suite energy_benchmarks "$out_dir/BENCH_energy.json" "$@"
  run_suite fault_benchmarks "$out_dir/BENCH_faults.json" "$@"
  run_suite obs_benchmarks "$out_dir/BENCH_obs.json" "$@"
  # Belt-and-braces: every configured output must exist and be non-empty,
  # so adding a suite above without its run_suite line (how
  # BENCH_faults.json went missing) can never pass again.
  local out
  for out in BENCH_noc.json BENCH_snn.json BENCH_cosim.json \
      BENCH_energy.json BENCH_faults.json BENCH_obs.json; do
    if [[ ! -s "$out_dir/$out" ]]; then
      echo "configured benchmark output $out_dir/$out was not produced" >&2
      exit 1
    fi
  done
}

if [[ "$CHECK" == "1" ]]; then
  SCRATCH=$(mktemp -d "${TMPDIR:-/tmp}/snnmap-bench-check.XXXXXX")
  trap 'rm -rf "$SCRATCH"' EXIT
  ATTEMPTS=${BENCH_CHECK_ATTEMPTS:-3}
  fresh_args=()
  status=1
  for ((try = 1; try <= ATTEMPTS; try++)); do
    mkdir -p "$SCRATCH/try$try"
    run_all_suites "$SCRATCH/try$try" "$@"
    fresh_args+=(--fresh-dir "$SCRATCH/try$try")
    if python3 scripts/bench_gate.py "${fresh_args[@]}" --committed-dir .
    then
      status=0
      break
    fi
    if ((try < ATTEMPTS)); then
      echo "bench gate failed on attempt $try/$ATTEMPTS — re-measuring" \
           "(best-per-counter across attempts)" >&2
    fi
  done
  exit "$status"
else
  # Allow overriding individual destinations (BENCH trajectories at the
  # repo root by default).
  NOC_OUT=${NOC_OUT:-BENCH_noc.json}
  SNN_OUT=${SNN_OUT:-BENCH_snn.json}
  COSIM_OUT=${COSIM_OUT:-BENCH_cosim.json}
  ENERGY_OUT=${ENERGY_OUT:-BENCH_energy.json}
  FAULTS_OUT=${FAULTS_OUT:-BENCH_faults.json}
  OBS_OUT=${OBS_OUT:-BENCH_obs.json}
  run_suite noc_sim_benchmarks "$NOC_OUT" "$@"
  run_suite snn_sim_benchmarks "$SNN_OUT" "$@"
  run_suite cosim_benchmarks "$COSIM_OUT" "$@"
  run_suite energy_benchmarks "$ENERGY_OUT" "$@"
  run_suite fault_benchmarks "$FAULTS_OUT" "$@"
  run_suite obs_benchmarks "$OBS_OUT" "$@"
  for out in "$NOC_OUT" "$SNN_OUT" "$COSIM_OUT" "$ENERGY_OUT" \
      "$FAULTS_OUT" "$OBS_OUT"; do
    if [[ ! -s "$out" ]]; then
      echo "configured benchmark output $out was not produced" >&2
      exit 1
    fi
  done
fi
