#include "noc/metrics.hpp"

#include <gtest/gtest.h>

namespace snnmap::noc {
namespace {

DeliveredSpike spike(std::uint32_t neuron, TileId dest, std::uint64_t emit,
                     std::uint64_t recv, std::uint32_t seq = 0) {
  DeliveredSpike d;
  d.source_neuron = neuron;
  d.dest_tile = dest;
  d.emit_cycle = emit;
  d.emit_step = emit;  // tests treat each emission cycle as its own step
  d.recv_cycle = recv;
  d.sequence = seq;
  return d;
}

TEST(SnnMetrics, EmptyLogIsAllZero) {
  const auto m = compute_snn_metrics({});
  EXPECT_EQ(m.delivered_spikes, 0u);
  EXPECT_EQ(m.disordered_spikes, 0u);
  EXPECT_EQ(m.disorder_fraction, 0.0);
  EXPECT_EQ(m.isi_distortion_avg_cycles, 0.0);
}

TEST(SnnMetrics, InOrderDeliveriesHaveNoDisorder) {
  const auto m = compute_snn_metrics({
      spike(1, 0, 10, 20),
      spike(2, 0, 15, 26),
      spike(1, 0, 30, 41),
  });
  EXPECT_EQ(m.disordered_spikes, 0u);
  EXPECT_EQ(m.disorder_fraction, 0.0);
}

TEST(SnnMetrics, OvertakenSpikeCountsAsDisordered) {
  // Neuron 2 emitted later (15) but arrives before neuron 1's spike (10).
  const auto m = compute_snn_metrics({
      spike(2, 0, 15, 18),
      spike(1, 0, 10, 25),  // arrives after a later-emitted spike
  });
  EXPECT_EQ(m.disordered_spikes, 1u);
  EXPECT_DOUBLE_EQ(m.disorder_fraction, 0.5);
  EXPECT_DOUBLE_EQ(m.disorder_percent(), 50.0);
}

TEST(SnnMetrics, SameStepSwapsAreNotDisorder) {
  // Two spikes of the same SNN step have no defined order: an arrival swap
  // between them must not count as disorder.
  auto a = spike(1, 0, 10, 30);
  auto b = spike(2, 0, 12, 25);
  a.emit_step = 5;
  b.emit_step = 5;
  const auto m = compute_snn_metrics({a, b});
  EXPECT_EQ(m.disordered_spikes, 0u);
}

TEST(SnnMetrics, CrossStepOvertakingIsDisorder) {
  auto a = spike(1, 0, 10, 30);
  auto b = spike(2, 0, 12, 25);
  a.emit_step = 5;
  b.emit_step = 6;  // later step arrives first -> the step-5 spike is late
  const auto m = compute_snn_metrics({a, b});
  EXPECT_EQ(m.disordered_spikes, 1u);
}

TEST(SnnMetrics, DisorderIsPerDestination) {
  // Same pattern as above but on different destinations -> no disorder.
  const auto m = compute_snn_metrics({
      spike(2, 0, 15, 18),
      spike(1, 1, 10, 25),
  });
  EXPECT_EQ(m.disordered_spikes, 0u);
}

TEST(SnnMetrics, UniformDelayHasZeroIsiDistortion) {
  // Constant latency preserves every inter-spike interval.
  const auto m = compute_snn_metrics({
      spike(1, 0, 100, 110, 0),
      spike(1, 0, 200, 210, 1),
      spike(1, 0, 350, 360, 2),
  });
  EXPECT_EQ(m.isi_pairs, 2u);
  EXPECT_DOUBLE_EQ(m.isi_distortion_avg_cycles, 0.0);
  EXPECT_DOUBLE_EQ(m.isi_distortion_max_cycles, 0.0);
}

TEST(SnnMetrics, VariableDelayDistortsIsi) {
  // Emission ISIs: 100, 100.  Arrival ISIs: 130, 80.
  const auto m = compute_snn_metrics({
      spike(1, 0, 0, 10, 0),
      spike(1, 0, 100, 140, 1),   // +30 distortion
      spike(1, 0, 200, 220, 2),   // -20 distortion
  });
  EXPECT_EQ(m.isi_pairs, 2u);
  EXPECT_DOUBLE_EQ(m.isi_distortion_avg_cycles, 25.0);  // (30+20)/2
  EXPECT_DOUBLE_EQ(m.isi_distortion_max_cycles, 30.0);
}

TEST(SnnMetrics, IsiStreamsAreSeparatedBySourceAndDest) {
  // Two sources interleaved at one destination: ISIs must be computed per
  // source, not across the merged stream.
  const auto m = compute_snn_metrics({
      spike(1, 0, 0, 5, 0),
      spike(2, 0, 50, 55, 0),
      spike(1, 0, 100, 105, 1),  // source-1 ISI 100 -> arrival 100: clean
      spike(2, 0, 150, 155, 1),  // source-2 ISI 100 -> arrival 100: clean
  });
  EXPECT_EQ(m.isi_pairs, 2u);
  EXPECT_DOUBLE_EQ(m.isi_distortion_avg_cycles, 0.0);
}

TEST(SnnMetrics, SequenceOrdersIsiStreams) {
  // Deliveries listed out of order; sequence numbers restore emission order.
  const auto m = compute_snn_metrics({
      spike(1, 0, 100, 140, 1),
      spike(1, 0, 0, 10, 0),
  });
  EXPECT_EQ(m.isi_pairs, 1u);
  EXPECT_DOUBLE_EQ(m.isi_distortion_avg_cycles, 30.0);
}

TEST(NocStats, ThroughputComputation) {
  NocStats s;
  s.copies_delivered = 500;
  s.duration_cycles = 10000;
  // 10000 cycles at 1000 cycles/ms = 10 ms -> 50 AER/ms.
  EXPECT_DOUBLE_EQ(s.throughput_aer_per_ms(1000), 50.0);
  EXPECT_EQ(s.throughput_aer_per_ms(0), 0.0);
  s.duration_cycles = 0;
  EXPECT_EQ(s.throughput_aer_per_ms(1000), 0.0);
}

TEST(DeliveredSpike, LatencyHelper) {
  EXPECT_EQ(spike(0, 0, 10, 25).latency(), 15u);
}

}  // namespace
}  // namespace snnmap::noc
