// snnmap_cli — full command-line driver for the mapping framework.
//
//   snnmap_cli <app> [--config file.yaml] [--partitioner pso|pacman|...]
//              [--crossbar-size N]
//              [--interconnect tree|mesh|ring|dragonfly|fattree]
//              [--noc-engine cycle|event]
//              [--chips N] [--seed S] [--csv out.csv] [--verbose]
//
// <app> is a Table I name (HW, IS, HD, HE, or the full names) or a synthetic
// topology "MxN".  The effective configuration is echoed so any run can be
// reproduced from a config file alone.
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "apps/registry.hpp"
#include "core/analysis.hpp"
#include "core/batch_eval.hpp"
#include "core/config_io.hpp"
#include "core/framework.hpp"
#include "cosim/cosim.hpp"
#include "cosim/fidelity.hpp"
#include "obs/export.hpp"
#include "obs/stats_json.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace {

void usage() {
  std::cerr
      << "usage: snnmap_cli <app> [options]\n"
         "  <app>                 HW | IS | HD | HE | MxN (e.g. 2x200)\n"
         "  --config FILE         load a YAML-subset flow configuration\n"
         "  --partitioner NAME    pso | pacman | neutrams | annealing | "
         "genetic\n"
         "  --crossbar-size N     neurons per crossbar (architecture sized "
         "to fit)\n"
         "  --interconnect KIND   tree | mesh | ring | dragonfly | fattree\n"
         "  --chips N             split the fabric across N chips "
         "(boundary links pay off-chip energy/latency)\n"
         "  --noc-engine KIND     cycle | event (default event) — NoC "
         "scheduling core; bit-identical results, event skips idle spans\n"
         "  --seed S              workload + optimizer seed\n"
         "  --threads N           fitness-evaluation workers (0 = all "
         "cores, 1 = serial; same result either way)\n"
         "  --csv FILE            also write the report row as CSV\n"
         "  --cosim               also run closed-loop SNN x NoC "
         "co-simulation of the mapping and report fidelity\n"
         "  --cosim-cycles N      NoC cycles per SNN timestep (default "
         "arch.cycles_per_ms * dt)\n"
         "  --faults              co-simulate over a faulty fabric "
         "(canonical seeded rates; implies --cosim)\n"
         "  --fault-seed S        fault-timeline seed (implies --faults)\n"
         "  --fault-link-rate R   per-link permanent-failure probability\n"
         "  --fault-router-rate R per-router permanent-failure probability\n"
         "  --fault-tile-rate R   per-tile permanent-failure probability\n"
         "  --fault-drop-prob P   per-link-traversal flit-drop probability\n"
         "  --retry               enable the AER retransmit protocol\n"
         "  --remap-on-failure    evacuate dead crossbars mid-run "
         "(graceful degradation)\n"
         "  --trace FILE          write a Chrome/Perfetto trace-event JSON "
         "of the co-sim run (implies --cosim)\n"
         "  --trace-csv FILE      write the same trace as CSV "
         "(implies --cosim)\n"
         "  --monitor             enable the per-link congestion monitor "
         "and report persistently hot links (implies --cosim)\n"
         "  --stats-json FILE     dump run statistics as JSON (NoC stats; "
         "plus fidelity / resilience / metrics under --cosim)\n"
         "  --analyze             print per-crossbar load / traffic "
         "analysis\n"
         "  --dump-config         print the effective configuration and "
         "exit\n"
         "  --verbose             info-level logging\n";
}

std::uint64_t parse_uint(const char* flag, const std::string& text) {
  try {
    std::size_t pos = 0;
    const auto value = std::stoull(text, &pos);
    if (pos != text.size()) throw std::invalid_argument("trailing chars");
    return value;
  } catch (const std::exception&) {
    std::cerr << "error: " << flag << " expects a non-negative integer, got '"
              << text << "'\n";
    std::exit(1);
  }
}

double parse_prob(const char* flag, const std::string& text) {
  try {
    std::size_t pos = 0;
    const double value = std::stod(text, &pos);
    if (pos != text.size()) throw std::invalid_argument("trailing chars");
    if (!(value >= 0.0) || !(value <= 1.0)) {
      throw std::invalid_argument("out of range");
    }
    return value;
  } catch (const std::exception&) {
    std::cerr << "error: " << flag << " expects a probability in [0, 1], "
              "got '" << text << "'\n";
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace snnmap;
  if (argc < 2) {
    usage();
    return 1;
  }
  const std::string app = argv[1];
  if (!apps::is_known_app(app)) {
    std::cerr << "error: unknown app '" << app << "'\n";
    usage();
    return 1;
  }

  util::Config file_config;
  std::string csv_path;
  std::uint64_t seed = 42;
  std::uint32_t threads = 0;
  bool threads_set = false;
  std::uint32_t crossbar_size = 0;
  std::uint32_t chips = 0;  // 0 = keep the config's chip count
  std::string partitioner_override;
  std::string interconnect_override;
  std::string noc_engine_override;
  bool dump_config = false;
  bool analyze = false;
  bool cosim = false;
  std::uint32_t cosim_cycles = 0;  // 0 = derive from the architecture
  bool faults = false;
  bool fault_seed_set = false;
  std::uint64_t fault_seed = 1;
  double fault_link_rate = -1.0;    // < 0 = keep the canonical default
  double fault_router_rate = -1.0;
  double fault_tile_rate = -1.0;
  double fault_drop_prob = -1.0;
  bool retry = false;
  bool remap_on_failure = false;
  std::string trace_path;
  std::string trace_csv_path;
  std::string stats_json_path;
  bool monitor = false;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "error: " << flag << " needs a value\n";
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--config") {
      try {
        file_config = util::Config::load_file(need_value("--config"));
      } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << '\n';
        return 1;
      }
    } else if (arg == "--partitioner") {
      partitioner_override = need_value("--partitioner");
    } else if (arg == "--crossbar-size") {
      crossbar_size = static_cast<std::uint32_t>(
          parse_uint("--crossbar-size", need_value("--crossbar-size")));
    } else if (arg == "--interconnect") {
      interconnect_override = need_value("--interconnect");
    } else if (arg == "--noc-engine") {
      noc_engine_override = need_value("--noc-engine");
    } else if (arg == "--chips") {
      chips = static_cast<std::uint32_t>(
          parse_uint("--chips", need_value("--chips")));
    } else if (arg == "--seed") {
      seed = parse_uint("--seed", need_value("--seed"));
    } else if (arg == "--threads") {
      threads = static_cast<std::uint32_t>(
          parse_uint("--threads", need_value("--threads")));
      threads_set = true;
    } else if (arg == "--csv") {
      csv_path = need_value("--csv");
    } else if (arg == "--dump-config") {
      dump_config = true;
    } else if (arg == "--cosim") {
      cosim = true;
    } else if (arg == "--cosim-cycles") {
      cosim_cycles = static_cast<std::uint32_t>(
          parse_uint("--cosim-cycles", need_value("--cosim-cycles")));
      cosim = true;
    } else if (arg == "--faults") {
      faults = true;
      cosim = true;
    } else if (arg == "--fault-seed") {
      fault_seed = parse_uint("--fault-seed", need_value("--fault-seed"));
      fault_seed_set = true;
      faults = true;
      cosim = true;
    } else if (arg == "--fault-link-rate") {
      fault_link_rate =
          parse_prob("--fault-link-rate", need_value("--fault-link-rate"));
      faults = true;
      cosim = true;
    } else if (arg == "--fault-router-rate") {
      fault_router_rate = parse_prob("--fault-router-rate",
                                     need_value("--fault-router-rate"));
      faults = true;
      cosim = true;
    } else if (arg == "--fault-tile-rate") {
      fault_tile_rate =
          parse_prob("--fault-tile-rate", need_value("--fault-tile-rate"));
      faults = true;
      cosim = true;
    } else if (arg == "--fault-drop-prob") {
      fault_drop_prob =
          parse_prob("--fault-drop-prob", need_value("--fault-drop-prob"));
      faults = true;
      cosim = true;
    } else if (arg == "--retry") {
      retry = true;
      cosim = true;
    } else if (arg == "--remap-on-failure") {
      remap_on_failure = true;
      cosim = true;
    } else if (arg == "--trace") {
      trace_path = need_value("--trace");
      cosim = true;
    } else if (arg == "--trace-csv") {
      trace_csv_path = need_value("--trace-csv");
      cosim = true;
    } else if (arg == "--monitor") {
      monitor = true;
      cosim = true;
    } else if (arg == "--stats-json") {
      stats_json_path = need_value("--stats-json");
    } else if (arg == "--analyze") {
      analyze = true;
    } else if (arg == "--verbose") {
      util::set_log_level(util::LogLevel::Info);
    } else {
      std::cerr << "error: unknown option '" << arg << "'\n";
      usage();
      return 1;
    }
  }

  try {
    core::MappingFlowConfig flow = core::mapping_flow_from_config(file_config);
    flow.seed = seed;
    if (threads_set) {
      flow.pso.threads = threads;
      flow.genetic.threads = threads;
      flow.annealing.threads = threads;
    }
    if (!partitioner_override.empty()) {
      flow.partitioner = core::partitioner_from_string(partitioner_override);
    }
    if (!interconnect_override.empty()) {
      flow.arch.interconnect =
          hw::interconnect_from_string(interconnect_override);
    }
    if (!noc_engine_override.empty()) {
      flow.noc.engine = noc::noc_engine_from_string(noc_engine_override);
    }

    // Fault rates without an explicit horizon rely on the co-simulator's
    // auto-filled lockstep timeline; the open-loop mapping flow has no such
    // timeline, so such a config is lifted out of the flow (mapping runs on
    // the healthy fabric) and handed to the closed-loop run instead.
    noc::FaultConfig file_faults = flow.noc.faults;
    {
      const bool rated = file_faults.link_fault_rate > 0.0 ||
                         file_faults.router_fault_rate > 0.0 ||
                         file_faults.tile_fault_rate > 0.0 ||
                         file_faults.transient_link_rate > 0.0;
      if (rated && file_faults.horizon_cycles == 0) {
        flow.noc.faults = noc::FaultConfig{};
      }
    }

    // Progress goes to stderr so `--dump-config` (and `--csv -`-style uses)
    // leave stdout machine-readable.
    std::cerr << "building workload '" << app << "' (seed " << seed
              << ")...\n";
    const snn::SnnGraph graph = apps::build_app(app, seed);
    if (crossbar_size != 0 || !flow.arch.fits(graph.neuron_count())) {
      const std::uint32_t size =
          crossbar_size != 0
              ? crossbar_size
              : std::max<std::uint32_t>(16, (graph.neuron_count() + 3) / 4);
      const auto kind = flow.arch.interconnect;
      const auto cycles = flow.arch.cycles_per_ms;
      const auto chip_count = flow.arch.chip_count;
      flow.arch = hw::Architecture::sized_for(graph.neuron_count(), size,
                                              kind);
      flow.arch.cycles_per_ms = cycles;
      flow.arch.chip_count = chip_count;
    }
    if (chips != 0) flow.arch.chip_count = chips;

    if (dump_config) {
      util::Config effective;
      core::mapping_flow_to_config(flow, effective);
      std::cout << effective.dump();
      return 0;
    }

    std::cout << "workload: " << graph.neuron_count() << " neurons, "
              << graph.edge_count() << " synapses, " << graph.total_spikes()
              << " spikes over " << graph.duration_ms() << " ms\n";
    std::cout << "target:   " << flow.arch.describe() << "\n";
    std::cout << "mapper:   " << core::to_string(flow.partitioner) << "\n\n";

    const core::MappingReport report = core::run_mapping_flow(graph, flow);

    util::Table table({"metric", "value"});
    table.add_row({"AER packets (objective F)",
                   std::to_string(report.aer_packets)});
    table.add_row({"edge-cut spikes (Eq. 8 literal)",
                   std::to_string(report.global_spikes)});
    table.add_row({"local synaptic events",
                   std::to_string(report.local_events)});
    table.add_row({"global energy (uJ)",
                   util::format_double(report.global_energy_pj * 1e-6, 4)});
    table.add_row({"local energy (uJ)",
                   util::format_double(report.local_energy_pj * 1e-6, 4)});
    table.add_row({"total energy (uJ)",
                   util::format_double(report.total_energy_uj(), 4)});
    table.add_row({"avg latency (cycles)",
                   util::format_double(
                       report.noc_stats.latency_cycles.mean(), 2)});
    table.add_row({"max latency (cycles)",
                   std::to_string(report.noc_stats.max_latency_cycles)});
    table.add_row({"throughput (AER/ms)",
                   util::format_double(report.noc_stats.throughput_aer_per_ms(
                                           flow.arch.cycles_per_ms), 2)});
    table.add_row({"disorder (% of delivered)",
                   util::format_double(
                       report.snn_metrics.disorder_percent(), 4)});
    table.add_row({"avg ISI distortion (cycles)",
                   util::format_double(
                       report.snn_metrics.isi_distortion_avg_cycles, 3)});
    table.add_row({"max ISI distortion (cycles)",
                   util::format_double(
                       report.snn_metrics.isi_distortion_max_cycles, 1)});
    std::cout << table.to_ascii();
    if (cosim) {
      // Closed-loop co-simulation of the mapping just produced: the same
      // network, with cross-crossbar synapses carried by the cycle-level
      // NoC, compared against the same-seed ideal-interconnect run.
      apps::AppNetwork app_net = apps::build_app_network(app, seed);
      cosim::CoSimConfig cc;
      cc.snn = app_net.sim;
      cc.noc = flow.noc;
      cc.cycles_per_timestep = std::max<std::uint32_t>(
          1, static_cast<std::uint32_t>(
                 static_cast<double>(flow.arch.cycles_per_ms) *
                 app_net.sim.dt_ms));
      cc = core::cosim_from_config(file_config, cc);
      if (cosim_cycles != 0) cc.cycles_per_timestep = cosim_cycles;

      // The closed-loop run carries the file's `faults:` section even when
      // the mapping flow ran fault-free (auto-horizon configs, see above).
      cc.noc.faults = file_faults;
      if (faults) {
        noc::FaultConfig& fc = cc.noc.faults;
        if (fault_seed_set || fc.seed == 0) fc.seed = fault_seed;
        const bool any_rate_flag =
            fault_link_rate >= 0.0 || fault_router_rate >= 0.0 ||
            fault_tile_rate >= 0.0 || fault_drop_prob >= 0.0;
        if (fault_link_rate >= 0.0) fc.link_fault_rate = fault_link_rate;
        if (fault_router_rate >= 0.0) fc.router_fault_rate = fault_router_rate;
        if (fault_tile_rate >= 0.0) fc.tile_fault_rate = fault_tile_rate;
        if (fault_drop_prob >= 0.0) fc.flit_drop_probability = fault_drop_prob;
        // Bare --faults with no rates anywhere: a canonical seeded scenario
        // (sparse permanent link faults plus rare flit corruption).
        if (!any_rate_flag && !fc.any()) {
          fc.link_fault_rate = 0.05;
          fc.transient_link_rate = 0.05;
          fc.flit_drop_probability = 0.001;
        }
      }
      if (!trace_path.empty() || !trace_csv_path.empty()) {
        cc.noc.trace.enabled = true;
      }
      if (monitor) cc.noc.monitor.enabled = true;
      if (retry) cc.retry.enabled = true;
      if (remap_on_failure) {
        cc.failure_remap.enabled = true;
        cc.failure_remap.arch = flow.arch;
        cc.failure_remap.remap.seed = flow.seed;
      }

      // Plastic synapses cannot be remote-cut (their weights live on the
      // destination crossbar).  When the mapping splits a plastic
      // projection — e.g. HD's input->excitatory afferents under any
      // capacity-bound partition — co-simulate with STDP off (frozen
      // initial weights) instead of refusing the run.
      if (cc.snn.enable_stdp) {
        snn::Network probe = app_net.build();
        const auto& assignment = report.partition.assignment();
        for (const snn::Synapse& s : probe.synapses()) {
          if (s.plastic && assignment[s.pre] != assignment[s.post]) {
            std::cerr << "note: mapping cuts a plastic projection; "
                         "co-simulating with STDP disabled (frozen initial "
                         "weights)\n";
            cc.snn.enable_stdp = false;
            break;
          }
        }
      }

      noc::Topology cosim_topology =
          noc::Topology::for_architecture(flow.arch);
      if (flow.arch.interconnect == hw::InterconnectKind::kMesh) {
        cosim_topology.set_mesh_routing(flow.mesh_routing);
      }
      // Track layout for the trace exporters (one Perfetto process per
      // chip, one thread per router) — captured before the topology moves
      // into the scenario.
      obs::TraceTrackInfo tracks;
      tracks.router_chip.resize(cosim_topology.router_count());
      for (noc::RouterId r = 0; r < cosim_topology.router_count(); ++r) {
        tracks.router_chip[r] = cosim_topology.chip_of_router(r);
      }
      tracks.tile_router.resize(cosim_topology.tile_count());
      for (noc::TileId tl = 0; tl < cosim_topology.tile_count(); ++tl) {
        tracks.tile_router[tl] = cosim_topology.router_of_tile(tl);
      }
      std::cerr << "co-simulating (" << cc.cycles_per_timestep
                << " NoC cycles per timestep)...\n";
      core::CoSimScenario scenario{
          .build = app_net.build,
          .partition = report.partition,
          .placement = report.placement,
          .topology = std::move(cosim_topology),
          .config = cc,
          .with_ideal_baseline = true};
      core::BatchCoSimEvaluator evaluator(1);
      const auto outcome = evaluator.run_all({std::move(scenario)});
      const cosim::CoSimResult& cs = outcome[0].result;
      const cosim::SpikeDivergence& divergence = outcome[0].divergence;

      util::Table fidelity({"co-sim metric", "value"});
      fidelity.add_row({"cycles per timestep",
                        std::to_string(cc.cycles_per_timestep)});
      fidelity.add_row({"AER packets offered",
                        std::to_string(cs.fidelity.packets_offered)});
      fidelity.add_row({"copies offered",
                        std::to_string(cs.fidelity.copies_offered)});
      fidelity.add_row({"copies accepted",
                        std::to_string(cs.fidelity.copies_accepted)});
      fidelity.add_row({"deadline misses (late windows)",
                        std::to_string(cs.fidelity.deadline_misses)});
      fidelity.add_row({"receive-queue drops",
                        std::to_string(cs.fidelity.receive_drops)});
      fidelity.add_row({"undelivered at end",
                        std::to_string(cs.fidelity.undelivered)});
      fidelity.add_row({"miss fraction",
                        util::format_double(cs.fidelity.miss_fraction(), 4)});
      fidelity.add_row({"mean transit (cycles)",
                        util::format_double(
                            cs.fidelity.transit_cycles.mean(), 2)});
      fidelity.add_row({"max transit (cycles)",
                        util::format_double(
                            cs.fidelity.transit_cycles.max(), 0)});
      fidelity.add_row({"spike-train divergence (%)",
                        util::format_double(divergence.fraction() * 100.0,
                                            4)});
      fidelity.add_row({"DVFS policy",
                        cosim::to_string(cc.dvfs.kind)});
      fidelity.add_row({"mean frequency (f/f0)",
                        util::format_double(
                            cs.fidelity.freq_scale.mean(), 3)});
      fidelity.add_row({"fabric energy (uJ)",
                        util::format_double(
                            cs.fidelity.fabric_energy_pj * 1e-6, 4)});
      fidelity.add_row({"energy-delay product (uJ x cycles)",
                        util::format_double(
                            cs.fidelity.energy_delay_product() * 1e-6, 3)});
      std::cout << '\n' << fidelity.to_ascii();

      if (cs.resilience.any() || cc.noc.faults.any()) {
        const cosim::ResilienceReport& rs = cs.resilience;
        util::Table resilience({"resilience metric", "value"});
        resilience.add_row({"link faults",
                            std::to_string(rs.noc_faults.link_faults)});
        resilience.add_row({"router faults",
                            std::to_string(rs.noc_faults.router_faults)});
        resilience.add_row({"tile faults",
                            std::to_string(rs.noc_faults.tile_faults)});
        resilience.add_row({"links restored",
                            std::to_string(rs.noc_faults.links_restored)});
        resilience.add_row({"fault-aware reroutes",
                            std::to_string(rs.noc_faults.reroutes)});
        resilience.add_row({"copies lost to faults",
                            std::to_string(rs.noc_faults.copies_lost())});
        resilience.add_row({"retransmit packets",
                            std::to_string(rs.retransmit_packets)});
        resilience.add_row({"retry recoveries",
                            std::to_string(rs.retry_recoveries)});
        resilience.add_row({"spikes lost (retry timeout)",
                            std::to_string(rs.spikes_lost_timeout)});
        resilience.add_row({"stale / duplicate arrivals",
                            std::to_string(rs.stale_arrivals) + " / " +
                                std::to_string(rs.duplicate_arrivals)});
        resilience.add_row({"retries pending at end",
                            std::to_string(rs.pending_at_end)});
        resilience.add_row({"retransmit energy (uJ)",
                            util::format_double(
                                rs.retransmit_energy_pj * 1e-6, 4)});
        resilience.add_row({"remap events",
                            std::to_string(rs.remap_events)});
        resilience.add_row({"neurons migrated / stranded",
                            std::to_string(rs.neurons_migrated) + " / " +
                                std::to_string(rs.neurons_stranded)});
        std::cout << '\n' << resilience.to_ascii();
      }

      if (monitor) {
        const obs::CongestionReport& cong = cs.fidelity.congestion;
        util::Table hot({"hot link", "ewma flits/cycle", "hot windows"});
        for (const obs::HotLink& h : cong.hot) {
          hot.add_row({std::to_string(h.from_router) + " -> " +
                           std::to_string(h.to_router),
                       util::format_double(h.ewma_occupancy, 3),
                       std::to_string(h.hot_streak)});
        }
        std::cout << '\n'
                  << "congestion: " << cong.links_tracked
                  << " links monitored over " << cong.windows_observed
                  << " windows, " << cong.hot_links
                  << " persistently hot (peak EWMA "
                  << util::format_double(cong.max_ewma_occupancy, 3)
                  << " flits/cycle)\n";
        if (!cong.hot.empty()) std::cout << hot.to_ascii();
      }

      if (!trace_path.empty()) {
        std::ofstream out(trace_path);
        if (!out) throw std::runtime_error("cannot write " + trace_path);
        obs::write_chrome_trace(out, cs.trace, tracks);
        std::cout << "wrote " << trace_path << " (" << cs.trace.size()
                  << " of " << cs.trace_recorded
                  << " recorded events, digest "
                  << cs.trace_digest << ")\n";
      }
      if (!trace_csv_path.empty()) {
        std::ofstream out(trace_csv_path);
        if (!out) throw std::runtime_error("cannot write " + trace_csv_path);
        obs::write_trace_csv(out, cs.trace);
        std::cout << "wrote " << trace_csv_path << '\n';
      }
      if (!stats_json_path.empty()) {
        std::ofstream out(stats_json_path);
        if (!out) {
          throw std::runtime_error("cannot write " + stats_json_path);
        }
        out << "{\"noc\":";
        obs::write_json(out, cs.noc);
        out << ",\"fidelity\":";
        obs::write_json(out, cs.fidelity);
        out << ",\"resilience\":";
        obs::write_json(out, cs.resilience);
        out << ",\"metrics\":";
        obs::write_json(out, cs.metrics);
        out << "}\n";
        std::cout << "wrote " << stats_json_path << '\n';
        stats_json_path.clear();  // the open-loop dump below is superseded
      }
    }
    if (!stats_json_path.empty()) {
      std::ofstream out(stats_json_path);
      if (!out) throw std::runtime_error("cannot write " + stats_json_path);
      out << "{\"noc\":";
      obs::write_json(out, report.noc_stats);
      out << "}\n";
      std::cout << "wrote " << stats_json_path << '\n';
    }
    if (analyze) {
      std::cout << '\n'
                << core::analyze_mapping(graph, report.partition).render();
    }
    if (!csv_path.empty()) {
      table.write_csv(csv_path);
      std::cout << "wrote " << csv_path << '\n';
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
