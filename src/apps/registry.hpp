// Application registry — maps the workload names used throughout the paper's
// evaluation ("HW", "IS", "HD", "HE", "synth_MxN" / "MxN") to builders, so
// every bench harness and example can construct workloads by name.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "snn/graph.hpp"
#include "snn/network.hpp"
#include "snn/simulator.hpp"

namespace snnmap::apps {

/// An application as a live network: what closed-loop co-simulation needs
/// (the spike graph alone cannot react to congested delivery).  `build`
/// returns the exact network the app's graph extraction simulates and `sim`
/// the matching simulation config, so a co-sim run under an ideal
/// interconnect reproduces the app's analytic spike trains bit for bit.
struct AppNetwork {
  std::function<snn::Network()> build;
  snn::SimulationConfig sim;
};

struct AppInfo {
  std::string name;         ///< canonical short name (e.g. "HW")
  std::string full_name;    ///< paper name (e.g. "hello world")
  std::string topology;     ///< Table I topology string
  std::function<snn::SnnGraph(std::uint64_t seed)> build;
  /// Live-network counterpart of `build` (same seed -> same network);
  /// registered alongside it so the two dispatch surfaces cannot drift.
  std::function<AppNetwork(std::uint64_t seed)> network;
};

/// The four realistic applications of Table I, in paper order.
const std::vector<AppInfo>& realistic_apps();

/// Builds any workload by name: one of the Table I short/full names, or a
/// synthetic "MxN" / "synth_MxN" topology.  Throws std::invalid_argument on
/// unknown names.
snn::SnnGraph build_app(const std::string& name, std::uint64_t seed);

/// True if `name` resolves (realistic or synthetic).
bool is_known_app(const std::string& name);

/// Resolves any build_app name to its network builder.  Throws
/// std::invalid_argument on unknown names.
AppNetwork build_app_network(const std::string& name, std::uint64_t seed);

}  // namespace snnmap::apps
