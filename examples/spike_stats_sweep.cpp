// Multi-seed spike statistics: why the mapping flow should not trust a
// single-seed point estimate.  The spike counts that annotate the synapse
// graph (Sec. III) come from stochastic Poisson-driven simulations, so this
// example fans the same workload across many seeds with
// core::BatchSnnEvaluator and reports the per-population firing-rate spread
// — cheap uncertainty bands instead of one arbitrary draw.
//
//   ./build/examples/spike_stats_sweep
#include <cstdint>
#include <iostream>
#include <vector>

#include "core/batch_eval.hpp"
#include "snn/network.hpp"
#include "snn/simulator.hpp"
#include "snn/spike_train.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace snnmap;

/// The hello-world workload shape: rate-coded Poisson grid driving an
/// Izhikevich grid plus a small readout population.
snn::Network workload() {
  snn::Network net;
  util::Rng rng(7);
  const auto input = net.add_poisson_group("input", 117, 20.0);
  net.set_rate_function(input, [](std::uint32_t local, double) {
    return 10.0 + 40.0 * static_cast<double>(local) / 116.0;
  });
  const auto grid = net.add_izhikevich_group(
      "grid", 117, snn::IzhikevichParams::regular_spiking());
  const auto out = net.add_izhikevich_group(
      "out", 9, snn::IzhikevichParams::regular_spiking());
  net.connect_one_to_one(input, grid, snn::WeightSpec::uniform(28.0, 34.0),
                         rng);
  net.connect_full(grid, out, snn::WeightSpec::uniform(1.5, 2.5), rng);
  return net;
}

}  // namespace

int main() {
  using namespace snnmap;

  snn::SimulationConfig config;
  config.duration_ms = 1000.0;
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t s = 1; s <= 16; ++s) seeds.push_back(s);

  core::BatchSnnEvaluator evaluator;  // threads auto-resolve
  std::cout << "Sweeping " << seeds.size() << " seeds on "
            << evaluator.thread_count() << " thread(s)...\n\n";
  const auto runs = evaluator.run_seeds(workload, config, seeds);

  // Per-population mean rate across seeds.
  const snn::Network net = workload();
  util::Table table({"population", "mean rate (Hz)", "stddev", "min", "max",
                     "seed-1 estimate"});
  for (const snn::Group& group : net.groups()) {
    util::Accumulator rates;
    double first_seed_rate = 0.0;
    for (std::size_t r = 0; r < runs.size(); ++r) {
      std::uint64_t spikes = 0;
      for (snn::NeuronId id = group.first; id < group.last(); ++id) {
        spikes += runs[r].result.spikes[id].size();
      }
      const double rate = static_cast<double>(spikes) /
                          static_cast<double>(group.size) /
                          config.duration_ms * 1000.0;
      if (r == 0) first_seed_rate = rate;
      rates.add(rate);
    }
    table.begin_row();
    table.cell(group.name);
    table.cell(rates.mean(), 3);
    table.cell(rates.stddev(), 3);
    table.cell(rates.min(), 3);
    table.cell(rates.max(), 3);
    table.cell(first_seed_rate, 3);
  }
  std::cout << table.to_ascii();
  std::cout << "\nThe seed-1 column is what a single-seed run would have "
               "reported; the spread\ncolumns are what the batch sweep adds "
               "for the same wall-clock budget on a pool.\n";
  return 0;
}
