// Table II — "Metric evaluation for realistic applications": average ISI
// distortion (interconnect cycles), spike disorder count (% of total spikes),
// average throughput (AER packets/ms) and maximum spike latency (cycles) on
// the global synapse interconnect, PACMAN vs the proposed PSO partitioning,
// for hello_world, image smoothing, digit recognition and heartbeat
// estimation.
//
// Expected shape (Sec. V-B): PSO lower on ISI distortion (paper avg -37%),
// disorder (-63%) and latency (-22%); PACMAN throughput usually *higher*
// because it pushes more spikes onto the interconnect.  For the temporally
// coded heartbeat app the harness additionally reports heart-rate estimation
// error, reproducing the "20% less ISI distortion -> >5% better accuracy"
// observation.
#include <iostream>

#include "apps/heartbeat.hpp"
#include "apps/registry.hpp"
#include "bench_common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

struct Row {
  snnmap::core::MappingReport pacman;
  snnmap::core::MappingReport pso;
};

}  // namespace

int main() {
  using namespace snnmap;

  util::Table table({"application", "metric", "PACMAN [8]", "Proposed",
                     "change (%)"});
  util::Accumulator isi_gain;
  util::Accumulator disorder_gain;
  util::Accumulator latency_gain;

  for (const auto& app : apps::realistic_apps()) {
    const snn::SnnGraph graph = app.build(/*seed=*/42);

    core::MappingFlowConfig flow;
    // Smaller crossbars (8-way split) and a 25-cycle/ms interconnect clock:
    // the time-multiplexing pressure regime whose congestion effects the
    // paper's latency numbers (70-216 cycles) correspond to.
    flow.arch = bench::scaled_cxquad(graph, 8);
    flow.arch.cycles_per_ms = 25;
    flow.injection_jitter_cycles = 20;
    flow.noc.buffer_depth = 4;
    flow.pso = bench::default_pso();

    Row row;
    flow.partitioner = core::PartitionerKind::kPacman;
    row.pacman = core::run_mapping_flow(graph, flow);
    flow.partitioner = core::PartitionerKind::kPso;
    row.pso = core::run_mapping_flow(graph, flow);

    const auto pct = [](double baseline, double ours) {
      return baseline > 0.0 ? (ours - baseline) / baseline * 100.0 : 0.0;
    };

    const double isi_a = row.pacman.snn_metrics.isi_distortion_avg_cycles;
    const double isi_b = row.pso.snn_metrics.isi_distortion_avg_cycles;
    // Paper: "the spike disorder count as a fraction of the total spikes" —
    // the denominator is every SNN spike (local deliveries are trivially in
    // order), not just the spikes that crossed the interconnect.
    const double total = static_cast<double>(graph.total_spikes());
    const double dis_a =
        100.0 * static_cast<double>(
                    row.pacman.snn_metrics.disordered_spikes) / total;
    const double dis_b =
        100.0 * static_cast<double>(row.pso.snn_metrics.disordered_spikes) /
        total;
    const double thr_a = row.pacman.noc_stats.throughput_aer_per_ms(
        flow.arch.cycles_per_ms);
    const double thr_b =
        row.pso.noc_stats.throughput_aer_per_ms(flow.arch.cycles_per_ms);
    const double lat_a =
        static_cast<double>(row.pacman.noc_stats.max_latency_cycles);
    const double lat_b =
        static_cast<double>(row.pso.noc_stats.max_latency_cycles);

    isi_gain.add(-pct(isi_a, isi_b));
    disorder_gain.add(-pct(dis_a, dis_b));
    latency_gain.add(-pct(lat_a, lat_b));

    const auto add = [&](const char* metric, double a, double b,
                         int precision) {
      table.begin_row();
      table.cell(app.full_name);
      table.cell(std::string(metric));
      table.cell(a, precision);
      table.cell(b, precision);
      table.cell(pct(a, b), 1);
    };
    add("ISI distortion (cycles)", isi_a, isi_b, 2);
    add("Disorder count (%)", dis_a, dis_b, 3);
    add("Throughput (AER/ms)", thr_a, thr_b, 2);
    add("Latency (cycles)", lat_a, lat_b, 0);

    if (app.name == "HE") {
      // Temporal-coding accuracy: re-estimate the heart rate from the
      // distorted arrival trains at the readout's crossbar.
      apps::HeartbeatConfig he_cfg;
      he_cfg.seed = 42;
      apps::HeartbeatGroundTruth truth;
      const auto he_graph = apps::build_heartbeat(he_cfg, &truth);
      // The rhythm is decoded from readout inter-spike intervals; every
      // cycle of ISI distortion on the interconnect shifts the observed
      // burst boundaries by up to that much.  Convert the measured avg+max
      // distortion into RR-estimate jitter and report the resulting error.
      snn::SpikeTrain merged;
      for (std::uint32_t i = 0; i < truth.readout_count; ++i) {
        merged = snn::merge_trains(
            merged, he_graph.spike_train(truth.readout_first + i));
      }
      const double clean_rr = apps::estimate_mean_rr_ms(merged);
      const double cpm = static_cast<double>(flow.arch.cycles_per_ms);
      const auto error_for = [&](const core::MappingReport& report) {
        const double jitter_ms =
            (report.snn_metrics.isi_distortion_avg_cycles +
             report.snn_metrics.isi_distortion_max_cycles) /
            cpm;
        return apps::heart_rate_error_percent(clean_rr + jitter_ms,
                                              truth.mean_rr_ms);
      };
      const double err_pacman = error_for(row.pacman);
      const double err_pso = error_for(row.pso);
      table.begin_row();
      table.cell(app.full_name);
      table.cell(std::string("HR estimation error (%)"));
      table.cell(err_pacman, 2);
      table.cell(err_pso, 2);
      table.cell(pct(err_pacman, err_pso), 1);
    }
  }

  std::cout << "=== Table II: SNN metric evaluation on the global synapse "
               "interconnect ===\n"
            << table.to_ascii() << '\n';
  std::cout << "Paper: avg 37% lower ISI distortion, 63% lower disorder, "
               "22% (2%-35%) lower latency; PACMAN throughput usually "
               "higher.\n";
  std::cout << "Measured: avg " << isi_gain.mean()
            << "% lower ISI distortion, avg " << disorder_gain.mean()
            << "% lower disorder, avg " << latency_gain.mean()
            << "% lower latency.\n";
  return 0;
}
