#include "snn/analysis.hpp"

#include <gtest/gtest.h>

#include "snn/poisson.hpp"

namespace snnmap::snn {
namespace {

TEST(Psth, CountsFallInRightBins) {
  const std::vector<SpikeTrain> trains{{5.0, 15.0, 15.5}, {25.0}};
  const auto hist = psth(trains, 30.0, 10.0);
  ASSERT_EQ(hist.size(), 3u);
  EXPECT_EQ(hist[0], 1u);
  EXPECT_EQ(hist[1], 2u);
  EXPECT_EQ(hist[2], 1u);
}

TEST(Psth, SpikesBeyondDurationIgnored) {
  const auto hist = psth({{5.0, 99.0}}, 10.0, 5.0);
  ASSERT_EQ(hist.size(), 2u);
  EXPECT_EQ(hist[0], 0u);
  EXPECT_EQ(hist[1], 1u);
}

TEST(Psth, RejectsBadParams) {
  EXPECT_THROW(psth({}, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(psth({}, 10.0, 0.0), std::invalid_argument);
}

TEST(Fano, PoissonIsNearOne) {
  util::Rng rng(3);
  const auto train = generate_poisson_train(50.0, 200000.0, rng);
  EXPECT_NEAR(fano_factor(train, 200000.0, 100.0), 1.0, 0.15);
}

TEST(Fano, RegularTrainIsNearZero) {
  SpikeTrain regular;
  for (int i = 0; i < 1000; ++i) regular.push_back(i * 10.0);
  EXPECT_LT(fano_factor(regular, 10000.0, 100.0), 0.1);
}

TEST(Fano, BurstyTrainExceedsOne) {
  // 10-spike bursts every 500 ms.
  SpikeTrain bursty;
  for (int burst = 0; burst < 40; ++burst) {
    for (int s = 0; s < 10; ++s) {
      bursty.push_back(burst * 500.0 + s);
    }
  }
  EXPECT_GT(fano_factor(bursty, 20000.0, 100.0), 2.0);
}

TEST(Fano, UndefinedCasesAreZero) {
  EXPECT_EQ(fano_factor({}, 1000.0, 100.0), 0.0);
  EXPECT_EQ(fano_factor({1.0}, 100.0, 100.0), 0.0);  // single window
}

TEST(Correlation, IdenticalTrainsAreOne) {
  util::Rng rng(5);
  const auto train = generate_poisson_train(30.0, 10000.0, rng);
  EXPECT_NEAR(spike_count_correlation(train, train, 10000.0, 50.0), 1.0,
              1e-9);
}

TEST(Correlation, IndependentTrainsNearZero) {
  util::Rng rng(7);
  const auto a = generate_poisson_train(30.0, 100000.0, rng);
  const auto b = generate_poisson_train(30.0, 100000.0, rng);
  EXPECT_NEAR(spike_count_correlation(a, b, 100000.0, 50.0), 0.0, 0.1);
}

TEST(Correlation, AntiphaseIsNegative) {
  SpikeTrain a;
  SpikeTrain b;
  for (int i = 0; i < 100; ++i) {
    // a fires in even 100 ms windows, b in odd ones.
    if (i % 2 == 0) {
      for (int s = 0; s < 5; ++s) a.push_back(i * 100.0 + s * 10.0);
    } else {
      for (int s = 0; s < 5; ++s) b.push_back(i * 100.0 + s * 10.0);
    }
  }
  EXPECT_LT(spike_count_correlation(a, b, 10000.0, 100.0), -0.9);
}

TEST(Correlation, ConstantCountsUndefined) {
  EXPECT_EQ(spike_count_correlation({}, {}, 1000.0, 100.0), 0.0);
}

TEST(Synchrony, PerfectlySynchronousPopulation) {
  SpikeTrain prototype;
  for (int i = 0; i < 50; ++i) prototype.push_back(i * 97.0);
  const std::vector<SpikeTrain> population(16, prototype);
  EXPECT_GT(synchrony_index(population, 5000.0, 50.0), 0.9);
}

TEST(Synchrony, IndependentPopulationIsLow) {
  util::Rng rng(11);
  std::vector<SpikeTrain> population;
  for (int i = 0; i < 16; ++i) {
    population.push_back(generate_poisson_train(40.0, 20000.0, rng));
  }
  EXPECT_LT(synchrony_index(population, 20000.0, 50.0), 0.3);
}

TEST(Synchrony, EmptyPopulationIsZero) {
  EXPECT_EQ(synchrony_index({}, 1000.0, 50.0), 0.0);
  EXPECT_EQ(synchrony_index({{}, {}}, 1000.0, 50.0), 0.0);
}

}  // namespace
}  // namespace snnmap::snn
