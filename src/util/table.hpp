// Aligned text tables and CSV output for the benchmark harnesses.
//
// Every bench binary reproduces one table/figure of the paper and must print
// the same rows/series the paper reports; Table renders those rows both as an
// aligned console table and as CSV for plotting.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace snnmap::util {

/// A simple row/column table with string cells and helpers for numbers.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  std::size_t columns() const noexcept { return headers_.size(); }
  std::size_t rows() const noexcept { return rows_.size(); }

  /// Appends a row; throws std::invalid_argument on column-count mismatch.
  void add_row(std::vector<std::string> cells);

  /// Row-building helpers: begin_row() then cell(...) in column order.
  void begin_row();
  void cell(const std::string& value);
  void cell(double value, int precision = 3);
  void cell(std::int64_t value);
  void cell(std::size_t value);

  /// Renders an aligned, boxed ASCII table.
  std::string to_ascii() const;

  /// Renders RFC-4180-ish CSV (cells containing commas/quotes are quoted).
  std::string to_csv() const;

  /// Writes CSV to a file; throws std::runtime_error on I/O failure.
  void write_csv(const std::string& path) const;

  const std::vector<std::string>& header() const noexcept { return headers_; }
  const std::vector<std::vector<std::string>>& data() const noexcept {
    return rows_;
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> pending_;
  bool building_ = false;
};

/// Formats a double with fixed precision (helper shared by benches).
std::string format_double(double value, int precision = 3);

}  // namespace snnmap::util
