#!/usr/bin/env bash
# Tier-1 verify, three legs:
#   1. Debug     — assertions and debug-only checks live, warnings-as-errors.
#   2. Release   — -O3 -DNDEBUG, the configuration the benchmarks and the
#                  perf acceptance numbers (scripts/bench.sh) are measured in.
#   3. Sanitize  — Debug + AddressSanitizer + UndefinedBehaviorSanitizer
#                  (-fno-sanitize-recover, so any finding fails the leg).
# All legs run the full CTest suite, so optimization-dependent breakage
# (UB, fragile float expectations) and memory errors surface here and not
# in a profile run.  Set SKIP_SANITIZE=1 to drop leg 3 (e.g. on toolchains
# without libasan).
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=${JOBS:-$(nproc)}

run_leg() {
  local build_type=$1
  local build_dir=$2
  shift 2
  echo "=== ci leg: ${build_type} (${build_dir}) $* ==="
  cmake -B "$build_dir" -S . \
    -DCMAKE_BUILD_TYPE="$build_type" \
    -DSNNMAP_WERROR=ON \
    "$@"
  cmake --build "$build_dir" -j "$JOBS"
  # The benchmark suites (BENCH_*.json trajectories) are part of the `all`
  # target, so the build above compiles them whenever Google Benchmark is
  # available; assert every binary actually materialized so a silently
  # skipped/ungenerated target cannot pass the leg.
  if ! grep -q "benchmark_DIR:PATH=benchmark_DIR-NOTFOUND" \
      "$build_dir/CMakeCache.txt"; then
    for bench in noc_sim_benchmarks snn_sim_benchmarks cosim_benchmarks \
        energy_benchmarks fault_benchmarks obs_benchmarks; do
      if [[ ! -x "$build_dir/bench/$bench" ]]; then
        echo "$bench did not build despite Google Benchmark" >&2
        exit 1
      fi
    done
  else
    echo "note: benchmark targets absent (Google Benchmark missing)"
  fi
  ctest --test-dir "$build_dir" --output-on-failure -j "$JOBS"
}

run_leg Debug "${DEBUG_BUILD_DIR:-build-debug}"
run_leg Release "${BUILD_DIR:-build}"
if [[ "${SKIP_SANITIZE:-0}" != "1" ]]; then
  run_leg Debug "${SANITIZE_BUILD_DIR:-build-asan}" \
    -DSNNMAP_SANITIZE=address,undefined
fi
