#include "apps/phased.hpp"

#include <algorithm>
#include <stdexcept>

#include "snn/poisson.hpp"
#include "util/rng.hpp"

namespace snnmap::apps {

snn::SnnGraph build_phased_clusters(const PhasedConfig& config,
                                    std::uint32_t phase) {
  if (config.clusters < 2 || config.cluster_size == 0) {
    throw std::invalid_argument("build_phased_clusters: degenerate config");
  }
  const std::uint32_t cluster_neurons =
      config.clusters * config.cluster_size;
  const std::uint32_t n = config.neuron_count();

  // Topology is a pure function of (config, seed) — NOT of the phase — so a
  // partition computed in one phase is structurally valid in all others.
  util::Rng topo_rng(config.seed);
  std::vector<snn::GraphEdge> edges;
  for (std::uint32_t k = 0; k < config.clusters; ++k) {
    const std::uint32_t base = k * config.cluster_size;
    for (std::uint32_t a = 0; a < config.cluster_size; ++a) {
      for (std::uint32_t b = 0; b < config.cluster_size; ++b) {
        if (a != b && topo_rng.chance(config.intra_probability)) {
          edges.push_back({base + a, base + b, 1.0F});
        }
      }
    }
    // Sparse bridges to the next cluster on the ring.
    const std::uint32_t next_base =
        ((k + 1) % config.clusters) * config.cluster_size;
    for (std::uint32_t br = 0; br < config.bridges_per_pair; ++br) {
      const auto src = static_cast<std::uint32_t>(
          topo_rng.below(config.cluster_size));
      const auto dst = static_cast<std::uint32_t>(
          topo_rng.below(config.cluster_size));
      edges.push_back({base + src, next_base + dst, 0.5F});
    }
  }
  // Relays: neuron ids [cluster_neurons, n), grouped by home cluster; each
  // projects relay_fanout synapses into random members of its cluster.
  for (std::uint32_t k = 0; k < config.clusters; ++k) {
    for (std::uint32_t r = 0; r < config.relays_per_cluster; ++r) {
      const std::uint32_t relay =
          cluster_neurons + k * config.relays_per_cluster + r;
      for (std::uint32_t f = 0; f < config.relay_fanout; ++f) {
        const auto member = static_cast<std::uint32_t>(
            topo_rng.below(config.cluster_size));
        edges.push_back(
            {relay, k * config.cluster_size + member, 1.0F});
      }
    }
  }

  // Phase-dependent spike trains: a rotating window of hot clusters.
  const auto hot_count = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(
             static_cast<double>(config.clusters) * config.hot_fraction));
  // Phases are periodic in the cluster count, including their noise streams.
  util::Rng rate_rng(config.seed ^
                     (0xF1A5E000ULL + phase % config.clusters));
  std::vector<snn::SpikeTrain> trains(n);
  for (std::uint32_t k = 0; k < config.clusters; ++k) {
    const bool hot =
        ((k + config.clusters - phase % config.clusters) % config.clusters) <
        hot_count;
    const double rate = hot ? config.hot_rate_hz : config.cold_rate_hz;
    for (std::uint32_t i = 0; i < config.cluster_size; ++i) {
      trains[k * config.cluster_size + i] =
          snn::generate_poisson_train(rate, config.duration_ms, rate_rng);
    }
    // Relays inherit their home cluster's thermal state.
    for (std::uint32_t r = 0; r < config.relays_per_cluster; ++r) {
      trains[cluster_neurons + k * config.relays_per_cluster + r] =
          snn::generate_poisson_train(rate, config.duration_ms, rate_rng);
    }
  }
  return snn::SnnGraph::from_parts(n, std::move(edges), std::move(trains),
                                   config.duration_ms);
}

}  // namespace snnmap::apps
