// Crossbar-to-tile placement.
//
// After partitioning decides *which* neurons share a crossbar, placement
// decides *where* each crossbar sits on the interconnect.  The identity
// placement matches the paper's setup (crossbar k on tile k); the
// communication-aware variant greedily swaps tile assignments to reduce
// sum(traffic * hop_distance) and is exercised by the placement ablation.
#pragma once

#include <cstdint>
#include <vector>

#include "core/partition.hpp"
#include "noc/topology.hpp"

namespace snnmap::core {

/// placement[k] = tile hosting crossbar k.
using Placement = std::vector<noc::TileId>;

/// Crossbar k on tile k.  Throws if the topology has too few tiles.
Placement identity_placement(std::uint32_t crossbar_count,
                             const noc::Topology& topology);

/// Weighted communication cost of a placement:
/// sum over crossbar pairs of traffic[k1][k2] * hop_distance(tile_k1, tile_k2).
std::uint64_t placement_cost(const Placement& placement,
                             const std::vector<std::uint64_t>& traffic_matrix,
                             const noc::Topology& topology);

/// Greedy pairwise-swap improvement from the identity placement: repeatedly
/// applies the best crossbar-tile swap until no swap helps or `max_passes`
/// sweeps complete.  Deterministic.
Placement greedy_placement(const std::vector<std::uint64_t>& traffic_matrix,
                           std::uint32_t crossbar_count,
                           const noc::Topology& topology,
                           std::uint32_t max_passes = 8);

}  // namespace snnmap::core
