// Trace determinism: the recorded event stream is a pure function of
// (config, topology, traffic) — bit-identical across the cycle and event
// scheduling cores and across any run_until / energy-window chunking of a
// session.  This is the observability analogue of the session-chunking
// golden test: the streaming digest covers every recorded event (ring
// eviction included), so digest equality pins the full stream.
//
// Also pinned here: enabling tracing must not perturb the simulation
// itself (golden digests unchanged), and the default config records
// nothing at all.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "golden_scenarios.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace snnmap::noc {
namespace {

struct TraceCapture {
  std::uint64_t digest = 0;
  std::uint64_t recorded = 0;
  golden::Digest sim;  ///< the golden digest of the same run
};

NocConfig traced(NocConfig config, NocEngine engine,
                 std::uint32_t ring_capacity = 4096) {
  config.engine = engine;
  config.trace.enabled = true;
  config.trace.ring_capacity = ring_capacity;
  return config;
}

TraceCapture one_shot(const golden::Scenario& scenario, NocEngine engine,
                      std::uint64_t* duration = nullptr) {
  NocSimulator sim(scenario.topology, traced(scenario.config, engine));
  const NocRunResult result = sim.run(scenario.traffic);
  if (duration != nullptr) *duration = result.stats.duration_cycles;
  return {result.trace_digest, result.trace_recorded,
          golden::digest_of(result)};
}

/// Seeded random chunking, mirroring session_chunking_test.cpp.
TraceCapture chunked(const golden::Scenario& scenario, NocEngine engine,
                     std::uint64_t duration, std::uint64_t seed) {
  NocSimulator sim(scenario.topology, traced(scenario.config, engine));
  sim.begin();
  sim.enqueue(scenario.traffic);
  util::Rng rng(seed);
  std::uint64_t end = 0;
  while (!sim.halted()) {
    end = std::min(end + 1 + rng.below(97), duration);
    sim.run_until(end);
    if (rng.below(3) == 0) sim.close_energy_window();
    if (end >= duration) break;
  }
  if (!sim.halted()) sim.run_until(kNoCycleLimit);
  const NocRunResult result = sim.finish();
  return {result.trace_digest, result.trace_recorded,
          golden::digest_of(result)};
}

TEST(TraceDeterminism, IdenticalAcrossEnginesAndChunkings) {
  for (auto& scenario : golden::scenarios()) {
    std::uint64_t duration = 0;
    const TraceCapture expected =
        one_shot(scenario, NocEngine::kCycle, &duration);
    EXPECT_GT(expected.recorded, 0u) << scenario.name;

    const TraceCapture event = one_shot(scenario, NocEngine::kEvent);
    EXPECT_EQ(event.digest, expected.digest) << scenario.name;
    EXPECT_EQ(event.recorded, expected.recorded) << scenario.name;

    for (const NocEngine engine : {NocEngine::kCycle, NocEngine::kEvent}) {
      for (const std::uint64_t seed : {1ull, 77ull, 4242ull}) {
        SCOPED_TRACE(scenario.name + std::string(" / ") + to_string(engine) +
                     " / seed " + std::to_string(seed));
        const TraceCapture c = chunked(scenario, engine, duration, seed);
        EXPECT_EQ(c.digest, expected.digest);
        EXPECT_EQ(c.recorded, expected.recorded);
      }
    }
  }
}

TEST(TraceDeterminism, TracingDoesNotPerturbTheSimulation) {
  for (auto& scenario : golden::scenarios()) {
    NocSimulator plain(scenario.topology, scenario.config);
    const golden::Digest off = golden::digest_of(plain.run(scenario.traffic));
    const TraceCapture on = one_shot(scenario, NocEngine::kCycle);
    EXPECT_EQ(on.sim.delivered_hash, off.delivered_hash) << scenario.name;
    EXPECT_EQ(on.sim.stats_hash, off.stats_hash) << scenario.name;
    EXPECT_EQ(on.sim.snn_hash, off.snn_hash) << scenario.name;
  }
}

TEST(TraceDeterminism, RingEvictionKeepsTheDigest) {
  const auto list = golden::scenarios();
  const golden::Scenario& scenario = list.front();
  // A 64-entry ring evicts nearly everything; the digest must still match
  // the full-capacity run because it streams at record time.
  NocSimulator tiny(scenario.topology,
                    traced(scenario.config, NocEngine::kCycle, 64));
  const NocRunResult small = tiny.run(scenario.traffic);
  const TraceCapture full = one_shot(scenario, NocEngine::kCycle);
  ASSERT_GT(small.trace_recorded, 64u);
  EXPECT_EQ(small.trace.size(), 64u);
  EXPECT_EQ(small.trace_digest, full.digest);
}

TEST(TraceDeterminism, DefaultConfigRecordsNothing) {
  const auto list = golden::scenarios();
  const golden::Scenario& scenario = list.front();
  NocSimulator sim(scenario.topology, scenario.config);
  const NocRunResult result = sim.run(scenario.traffic);
  EXPECT_EQ(result.trace_recorded, 0u);
  EXPECT_EQ(result.trace_digest, 0u);
  EXPECT_TRUE(result.trace.empty());
  EXPECT_FALSE(sim.tracer().enabled());
}

TEST(TraceDeterminism, FaultedScenarioTracesTheScheduledTimeline) {
  // The faulted golden scenario must record its fault transitions with
  // *scheduled* cycles — identical on both engines and present even though
  // some transitions apply only after the traffic drains.
  for (auto& scenario : golden::scenarios()) {
    if (scenario.name != "mesh4x4_xy_multicast_faulted") continue;
    NocSimulator sim(scenario.topology,
                     traced(scenario.config, NocEngine::kCycle, 1 << 20));
    const NocRunResult result = sim.run(scenario.traffic);
    std::uint64_t fault_events = 0;
    for (const obs::TraceEvent& e : result.trace) {
      if (e.type >= obs::TraceEventType::kFaultLinkDown &&
          e.type <= obs::TraceEventType::kFaultTileUp) {
        ++fault_events;
      }
    }
    EXPECT_GT(fault_events, 0u);
    return;
  }
  FAIL() << "faulted golden scenario missing";
}

}  // namespace
}  // namespace snnmap::noc
