// Fidelity metrics for closed-loop co-simulation: how faithfully did the
// interconnect transport the SNN's spikes, and how far did the resulting
// dynamics drift from an ideal (zero-congestion) interconnect?
#pragma once

#include <cstdint>
#include <vector>

#include "core/partition.hpp"
#include "core/placement.hpp"
#include "noc/metrics.hpp"
#include "obs/congestion.hpp"
#include "snn/graph.hpp"
#include "snn/spike_train.hpp"
#include "util/stats.hpp"

namespace snnmap::cosim {

/// Transport-level fidelity of one closed-loop run.  "Copies" are
/// (packet, destination-crossbar) pairs — the unit the receive queue and
/// the delivery log account in.
struct FidelityReport {
  std::uint64_t steps = 0;            ///< SNN steps simulated
  std::uint64_t total_spikes = 0;     ///< all SNN spikes (local + remote)
  std::uint64_t packets_offered = 0;  ///< multicast packets entering the NoC
  std::uint64_t copies_offered = 0;
  std::uint64_t copies_arrived = 0;   ///< reached a destination decoder
  std::uint64_t copies_accepted = 0;  ///< applied to the dynamics
  std::uint64_t receive_drops = 0;    ///< bounded-receive-queue rejections
  std::uint64_t undelivered = 0;      ///< still in flight when the run ended
  /// Accepted copies that arrived after their emission window — each one
  /// stretched its synaptic delay by at least a full timestep.
  std::uint64_t deadline_misses = 0;

  util::Accumulator transit_cycles;  ///< recv - emit, per arrived copy
  util::Histogram transit_hist{0.0, 1.0, 1};  ///< rebuilt per run
  /// Transit accumulator per *arrival* step (latency the crossbar saw that
  /// step); empty accumulators mark windows with no arrivals.
  std::vector<util::Accumulator> per_step_transit;
  /// Deadline misses per *emission* step.
  std::vector<std::uint32_t> per_step_misses;

  // --- windowed interconnect energy + DVFS trajectory --------------------
  /// Total fabric (global-synapse) energy in pJ: per-window activity from
  /// the NoC's WindowEnergySample stream, priced at the EnergyModel
  /// constants and scaled by the DVFS energy factor of the frequency each
  /// window ran at.  Under DvfsPolicy fixed this is bit-identical to the
  /// one-shot NocStats::global_energy_pj of the same run (the accumulators
  /// carry exact integer activity when every scale is 1).
  double fabric_energy_pj = 0.0;
  /// DVFS-scaled energy of each lockstep window, in pJ (one entry per step).
  std::vector<double> per_step_energy_pj;
  /// Interconnect cycles each window actually ran (the realized DVFS
  /// frequency trajectory; cycles_per_timestep everywhere when fixed).
  std::vector<std::uint32_t> per_step_cycles;
  util::Accumulator window_energy_pj;  ///< over per_step_energy_pj samples
  util::Accumulator freq_scale;        ///< realized per-window f/f_nominal
  util::Histogram energy_hist{0.0, 1.0, 1};  ///< per-window energy, rebuilt

  /// Per-link congestion summary over the lockstep windows (one monitor
  /// window per step; `monitored == false` when NocConfig::monitor is
  /// disabled).  The persistently-hot link list is the input the ROADMAP's
  /// UGAL / mid-run-remap closed loop consumes.
  obs::CongestionReport congestion;

  /// Copies that failed to arrive within their window, over everything
  /// offered (misses + drops + undelivered; 0 when nothing was offered).
  double miss_fraction() const noexcept;
  double drop_fraction() const noexcept;
  /// Energy-delay product of the transport: total fabric energy x mean
  /// spike transit (pJ x cycles).  The DVFS tradeoff in one number — a
  /// policy that slows the fabric saves energy but stretches transit, and
  /// a good one lowers the product.
  double energy_delay_product() const noexcept {
    return fabric_energy_pj * transit_cycles.mean();
  }
};

/// Fault-tolerance accounting of one closed-loop run: what the fault model
/// injected, what the AER retry protocol recovered, and what the
/// remap-on-failure policy migrated.  All-zero (any() == false) when the
/// run had no faults, no retry protocol, and no remap policy.
///
/// Retransmitted traffic is *also* counted into FidelityReport's
/// packets_offered / copies_offered (a retry is real transport work), so
/// `undelivered = copies_offered - copies_arrived` stays a non-negative
/// invariant; retransmit_packets / retransmit_copies record how much of the
/// offered volume was retries.
struct ResilienceReport {
  noc::FaultStats noc_faults;  ///< fabric-level fault accounting (copy)

  // --- AER-boundary retry protocol ---------------------------------------
  std::uint64_t retransmit_packets = 0;  ///< retry packets re-injected
  std::uint64_t retransmit_copies = 0;   ///< destination copies across them
  /// (packet, destination) pairs that arrived only after >= 1 retransmit.
  std::uint64_t retry_recoveries = 0;
  /// Pending (packet, destination) pairs abandoned after timeout_windows —
  /// these synaptic deliveries are lost for good and the SNN dynamics
  /// diverge accordingly.
  std::uint64_t spikes_lost_timeout = 0;
  /// Copies that arrived after their retry entry had already timed out
  /// (discarded by the receiver's staleness window, not applied).
  std::uint64_t stale_arrivals = 0;
  /// Copies that arrived for an already-satisfied (packet, destination)
  /// pair — the original and a retransmit both made it (not applied twice).
  std::uint64_t duplicate_arrivals = 0;
  std::uint64_t pending_at_end = 0;  ///< retry entries still open at run end
  /// Source-side retry energy (hw::EnergyModel::retransmit_pj per
  /// retransmitted packet), separate from the fabric energy the retried
  /// copies accrue in flight.
  double retransmit_energy_pj = 0.0;

  // --- remap-on-failure graceful degradation -----------------------------
  std::uint32_t remap_events = 0;      ///< windows that triggered evacuation
  std::uint32_t neurons_migrated = 0;  ///< moved off dead crossbars (total)
  /// Neurons still on dead hardware after the *last* remap event (a state,
  /// not a per-event sum: each evacuation retries earlier strandings).
  std::uint32_t neurons_stranded = 0;

  bool any() const noexcept {
    return noc_faults.any() || retransmit_packets != 0 ||
           spikes_lost_timeout != 0 || stale_arrivals != 0 ||
           duplicate_arrivals != 0 || pending_at_end != 0 ||
           remap_events != 0;
  }
};

/// Exact spike-train divergence between two runs of the same network:
/// multiset intersection of (neuron, spike time) events.  Spike times are
/// step-grid multiples of dt, so exact double comparison is meaningful.
struct SpikeDivergence {
  std::uint64_t matched = 0;     ///< identical (neuron, time) events
  std::uint64_t only_ideal = 0;  ///< events only in the reference run
  std::uint64_t only_cosim = 0;  ///< events only in the co-sim run
  /// Symmetric difference over the union; 0 = bit-identical dynamics,
  /// 1 = no shared spikes.
  double fraction() const noexcept;
  bool identical() const noexcept {
    return only_ideal == 0 && only_cosim == 0;
  }
};

/// Compares per-neuron trains (reference first).  Throws
/// std::invalid_argument when the neuron counts differ.
SpikeDivergence spike_divergence(
    const std::vector<snn::SpikeTrain>& ideal,
    const std::vector<snn::SpikeTrain>& cosim);

/// Re-annotates a spike graph with *observed* traffic from a live NoC
/// delivery log: every source neuron that shipped packets gets its train
/// rebuilt from the packets' first-copy arrival times (recv_cycle /
/// cycles_per_ms, clamped to the graph duration), while purely-local
/// sources keep their analytic trains.  This is the feedback signal the
/// run-time remapper consumes in co-sim mode: it optimizes against what
/// the fabric actually delivered, congestion smear included.
snn::SnnGraph observed_graph_from_noc(
    const snn::SnnGraph& analytic, const core::Partition& partition,
    const core::Placement& placement,
    const std::vector<noc::DeliveredSpike>& delivered,
    std::uint32_t cycles_per_ms);

}  // namespace snnmap::cosim
