#include "snn/network.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

namespace snnmap::snn {
namespace {

TEST(Network, GroupsAreContiguous) {
  Network net;
  const auto a = net.add_lif_group("a", 10);
  const auto b = net.add_izhikevich_group("b", 5);
  const auto c = net.add_poisson_group("c", 3, 20.0);
  EXPECT_EQ(net.neuron_count(), 18u);
  EXPECT_EQ(net.group(a).first, 0u);
  EXPECT_EQ(net.group(b).first, 10u);
  EXPECT_EQ(net.group(c).first, 15u);
  EXPECT_EQ(net.group_of(0), a);
  EXPECT_EQ(net.group_of(12), b);
  EXPECT_EQ(net.group_of(17), c);
}

TEST(Network, RejectsEmptyGroup) {
  Network net;
  EXPECT_THROW(net.add_lif_group("x", 0), std::invalid_argument);
}

TEST(Network, RejectsNegativePoissonRate) {
  Network net;
  EXPECT_THROW(net.add_poisson_group("x", 4, -1.0), std::invalid_argument);
}

TEST(Network, GlobalIdMapping) {
  Network net;
  net.add_lif_group("a", 10);
  const auto b = net.add_lif_group("b", 5);
  EXPECT_EQ(net.global_id(b, 0), 10u);
  EXPECT_EQ(net.global_id(b, 4), 14u);
  EXPECT_THROW(net.global_id(b, 5), std::out_of_range);
  EXPECT_THROW(net.global_id(99, 0), std::out_of_range);
}

TEST(Network, FindGroupByName) {
  Network net;
  net.add_lif_group("alpha", 2);
  const auto beta = net.add_lif_group("beta", 2);
  EXPECT_EQ(net.find_group("beta"), beta);
  EXPECT_EQ(net.find_group("gamma"), Network::kNoGroup);
}

TEST(Network, FullConnectionCountsAndSelfExclusion) {
  Network net;
  util::Rng rng(1);
  const auto a = net.add_lif_group("a", 4);
  const auto b = net.add_lif_group("b", 3);
  net.connect_full(a, b, WeightSpec::fixed(1.0), rng);
  EXPECT_EQ(net.synapses().size(), 12u);

  Network net2;
  const auto g = net2.add_lif_group("g", 4);
  net2.connect_full(g, g, WeightSpec::fixed(1.0), rng);
  EXPECT_EQ(net2.synapses().size(), 12u);  // 4*4 - 4 self loops

  Network net3;
  const auto h = net3.add_lif_group("h", 4);
  net3.connect_full(h, h, WeightSpec::fixed(1.0), rng, 1, false,
                    /*allow_self=*/true);
  EXPECT_EQ(net3.synapses().size(), 16u);
}

TEST(Network, RandomConnectionProbability) {
  Network net;
  util::Rng rng(2);
  const auto a = net.add_lif_group("a", 100);
  const auto b = net.add_lif_group("b", 100);
  net.connect_random(a, b, 0.25, WeightSpec::fixed(1.0), rng);
  const double got = static_cast<double>(net.synapses().size()) / 10000.0;
  EXPECT_NEAR(got, 0.25, 0.03);
}

TEST(Network, RandomConnectionRejectsBadProbability) {
  Network net;
  util::Rng rng(2);
  const auto a = net.add_lif_group("a", 2);
  EXPECT_THROW(net.connect_random(a, a, -0.1, WeightSpec::fixed(1.0), rng),
               std::invalid_argument);
  EXPECT_THROW(net.connect_random(a, a, 1.1, WeightSpec::fixed(1.0), rng),
               std::invalid_argument);
}

TEST(Network, OneToOneRequiresEqualSizes) {
  Network net;
  util::Rng rng(3);
  const auto a = net.add_lif_group("a", 4);
  const auto b = net.add_lif_group("b", 4);
  const auto c = net.add_lif_group("c", 3);
  net.connect_one_to_one(a, b, WeightSpec::fixed(2.0), rng);
  EXPECT_EQ(net.synapses().size(), 4u);
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(net.synapses()[i].pre, i);
    EXPECT_EQ(net.synapses()[i].post, 4 + i);
  }
  EXPECT_THROW(net.connect_one_to_one(a, c, WeightSpec::fixed(1.0), rng),
               std::invalid_argument);
}

TEST(Network, Gaussian2dKernelShape) {
  Network net;
  const auto a = net.add_poisson_group("a", 16, 10.0);  // 4x4
  const auto b = net.add_lif_group("b", 16);
  net.connect_gaussian_2d(a, b, 4, 4, 1, 1.0, 1.0);
  // Interior pixel: 9 afferents; corner: 4.
  std::size_t corner_in = 0;
  std::size_t center_in = 0;
  for (const auto& s : net.synapses()) {
    if (s.post == 16 + 0) ++corner_in;         // (0,0) of b
    if (s.post == 16 + 5) ++center_in;         // (1,1) of b
  }
  EXPECT_EQ(corner_in, 4u);
  EXPECT_EQ(center_in, 9u);
}

TEST(Network, Gaussian2dWeightsDecay) {
  Network net;
  const auto a = net.add_poisson_group("a", 9, 10.0);  // 3x3
  const auto b = net.add_lif_group("b", 9);
  net.connect_gaussian_2d(a, b, 3, 3, 1, 2.0, 0.8);
  float center_w = 0.0F;
  float corner_w = 0.0F;
  for (const auto& s : net.synapses()) {
    if (s.post == 9 + 4 && s.pre == 4) center_w = s.weight;
    if (s.post == 9 + 4 && s.pre == 0) corner_w = s.weight;
  }
  EXPECT_FLOAT_EQ(center_w, 2.0F);
  EXPECT_LT(corner_w, center_w);
  EXPECT_GT(corner_w, 0.0F);
}

TEST(Network, Gaussian2dValidatesSizes) {
  Network net;
  const auto a = net.add_poisson_group("a", 10, 10.0);
  const auto b = net.add_lif_group("b", 16);
  EXPECT_THROW(net.connect_gaussian_2d(a, b, 4, 4, 1, 1.0, 1.0),
               std::invalid_argument);
}

TEST(Network, AddSynapseValidation) {
  Network net;
  net.add_lif_group("a", 2);
  EXPECT_THROW(net.add_synapse(0, 5, 1.0), std::out_of_range);
  EXPECT_THROW(net.add_synapse(5, 0, 1.0), std::out_of_range);
  EXPECT_THROW(net.add_synapse(0, 1, 1.0, /*delay=*/0), std::invalid_argument);
}

TEST(Network, MaxDelayTracksSynapses) {
  Network net;
  net.add_lif_group("a", 3);
  EXPECT_EQ(net.max_delay_steps(), 1u);
  net.add_synapse(0, 1, 1.0, 4);
  net.add_synapse(1, 2, 1.0, 2);
  EXPECT_EQ(net.max_delay_steps(), 4u);
}

TEST(Network, FanoutIndexIsConsistent) {
  Network net;
  net.add_lif_group("a", 4);
  net.add_synapse(0, 1, 1.0);
  net.add_synapse(0, 2, 1.0);
  net.add_synapse(2, 3, 1.0);
  const auto& offsets = net.fanout_offsets();
  const auto& order = net.fanout_synapses();
  ASSERT_EQ(offsets.size(), 5u);
  EXPECT_EQ(offsets[1] - offsets[0], 2u);  // neuron 0 has 2 outgoing
  EXPECT_EQ(offsets[3] - offsets[2], 1u);  // neuron 2 has 1
  std::set<std::uint32_t> targets;
  for (std::uint32_t k = offsets[0]; k < offsets[1]; ++k) {
    targets.insert(net.synapses()[order[k]].post);
  }
  EXPECT_EQ(targets, (std::set<std::uint32_t>{1, 2}));
}

TEST(Network, FanoutIndexInvalidatedByNewSynapse) {
  Network net;
  net.add_lif_group("a", 3);
  net.add_synapse(0, 1, 1.0);
  EXPECT_EQ(net.fanout_offsets()[1], 1u);
  net.add_synapse(0, 2, 1.0);
  EXPECT_EQ(net.fanout_offsets()[1], 2u);  // rebuilt
}

TEST(Network, RateFunctionOnlyOnPoissonGroups) {
  Network net;
  const auto a = net.add_lif_group("a", 2);
  EXPECT_THROW(
      net.set_rate_function(a, [](std::uint32_t, double) { return 1.0; }),
      std::invalid_argument);
}

TEST(WeightSpec, FixedAndUniform) {
  util::Rng rng(4);
  EXPECT_EQ(WeightSpec::fixed(2.5).sample(rng), 2.5);
  const auto spec = WeightSpec::uniform(1.0, 2.0);
  for (int i = 0; i < 100; ++i) {
    const double w = spec.sample(rng);
    EXPECT_GE(w, 1.0);
    EXPECT_LT(w, 2.0);
  }
}

}  // namespace
}  // namespace snnmap::snn
