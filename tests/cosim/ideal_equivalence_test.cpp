// Golden-equivalence property: closed-loop co-simulation under an ideal
// interconnect — a cycles_per_timestep budget large enough that every
// packet lands within its emission window, drops disabled — must reproduce
// the standalone snn::Simulator spike log bit for bit on the PR 3 golden
// scenarios (tests/snn/golden_scenarios.hpp), including final synapse
// weights on the STDP scenarios.
//
// Each scenario is mapped onto multiple crossbars so real AER traffic
// crosses the NoC (asserted).  Plastic synapses must stay crossbar-local
// (the engine rejects cut plastic synapses), so the partition groups
// plastically-connected components before block-packing — the co-residency
// rule any STDP-capable mapping must obey anyway.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "../snn/golden_scenarios.hpp"
#include "core/partition.hpp"
#include "core/placement.hpp"
#include "cosim/cosim.hpp"
#include "cosim/fidelity.hpp"
#include "noc/topology.hpp"

namespace snnmap::cosim {
namespace {

/// Ideal-window budget: far above any queueing the scenarios can produce
/// (every window fully drains, checked by the deadline-miss assertion).
constexpr std::uint32_t kIdealBudget = 1u << 15;

/// Partitions `net` into blocks of ~neuron_count/4 while keeping neurons
/// joined by plastic synapses on one crossbar (union-find over plastic
/// edges, components packed first-fit in ascending-root order).
core::Partition plastic_safe_partition(const snn::Network& net) {
  const std::uint32_t n = net.neuron_count();
  std::vector<std::uint32_t> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  const auto find = [&](std::uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const snn::Synapse& s : net.synapses()) {
    if (!s.plastic) continue;
    parent[find(s.pre)] = find(s.post);
  }

  // Component sizes, then first-fit into bins of capacity ~n/4 (a
  // component larger than the capacity still gets one bin to itself).
  const std::uint32_t capacity = std::max<std::uint32_t>(1, (n + 3) / 4);
  std::vector<std::uint32_t> component_bin(n, core::kUnassigned);
  std::vector<std::uint32_t> bin_load;
  std::vector<std::uint32_t> component_size(n, 0);
  for (std::uint32_t i = 0; i < n; ++i) ++component_size[find(i)];
  std::vector<core::CrossbarId> assignment(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t root = find(i);
    if (component_bin[root] == core::kUnassigned) {
      std::uint32_t bin = 0;
      for (; bin < bin_load.size(); ++bin) {
        if (bin_load[bin] + component_size[root] <= capacity) break;
      }
      if (bin == bin_load.size()) bin_load.push_back(0);
      bin_load[bin] += component_size[root];
      component_bin[root] = bin;
    }
    assignment[i] = component_bin[root];
  }
  // A fully plastically-connected network legitimately collapses to one
  // bin (any multi-crossbar split would cut a plastic synapse); keep a
  // second, empty crossbar so the co-sim path still runs a real topology.
  const auto bins = std::max<std::uint32_t>(
      2, static_cast<std::uint32_t>(bin_load.size()));
  core::Partition result(n, bins);
  for (std::uint32_t i = 0; i < n; ++i) result.assign(i, assignment[i]);
  return result;
}

TEST(CoSimIdealEquivalence, GoldenScenariosReproduceStandaloneBitForBit) {
  std::size_t scenarios_with_traffic = 0;
  for (const auto& scenario : snn::golden::scenarios()) {
    SCOPED_TRACE(scenario.name);

    // Standalone reference (its own network instance: STDP mutates state).
    snn::Network reference = scenario.build();
    snn::Simulator standalone(reference, scenario.config);
    const snn::SimulationResult expected = standalone.run();

    snn::Network net = scenario.build();
    const core::Partition partition = plastic_safe_partition(net);
    noc::Topology topology =
        noc::Topology::tree(partition.crossbar_count(), 4);
    const core::Placement placement =
        core::identity_placement(partition.crossbar_count(), topology);

    CoSimConfig config;
    config.snn = scenario.config;
    config.cycles_per_timestep = kIdealBudget;
    CoSimulator cosim(net, partition, placement, std::move(topology),
                      config);
    const CoSimResult result = cosim.run();

    // The interconnect really was ideal...
    EXPECT_EQ(result.fidelity.deadline_misses, 0u);
    EXPECT_EQ(result.fidelity.receive_drops, 0u);
    EXPECT_EQ(result.fidelity.undelivered, 0u);
    if (result.fidelity.packets_offered > 0) ++scenarios_with_traffic;

    // ...and the dynamics are bit-identical: spike log and final weights.
    EXPECT_EQ(result.snn.total_spikes, expected.total_spikes);
    EXPECT_EQ(result.snn.spikes, expected.spikes);
    ASSERT_EQ(net.synapses().size(), reference.synapses().size());
    for (std::size_t s = 0; s < net.synapses().size(); ++s) {
      EXPECT_EQ(net.synapses()[s].weight, reference.synapses()[s].weight)
          << "synapse " << s;
    }
  }
  // The property is vacuous unless the mappings actually ship spikes.
  EXPECT_GE(scenarios_with_traffic, 8u);
}

}  // namespace
}  // namespace snnmap::cosim
