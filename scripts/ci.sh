#!/usr/bin/env bash
# Tier-1 verify: Release build with warnings-as-errors, full CTest suite.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
JOBS=${JOBS:-$(nproc)}

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=Release \
  -DSNNMAP_WERROR=ON
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"
