// Synthetic m x n workloads — Sec. V: "synthetic applications with different
// number of neural network layers and number of neurons per layer ... Neurons
// of the first layer in each of these topologies receive their input from 10
// neurons creating spike trains, whose inter-spike interval follows a Poisson
// process with mean firing rates between 10 Hz and 100 Hz.  Additionally,
// these synthetic SNNs implement fully connected feedforward topologies."
#pragma once

#include <cstdint>
#include <string>

#include "snn/graph.hpp"

namespace snnmap::apps {

struct SyntheticConfig {
  std::uint32_t layers = 1;            ///< m
  std::uint32_t neurons_per_layer = 200;  ///< n
  std::uint32_t input_neurons = 10;
  double min_rate_hz = 10.0;
  double max_rate_hz = 100.0;
  std::uint64_t seed = 1;
  double duration_ms = 500.0;
};

snn::SnnGraph build_synthetic(const SyntheticConfig& config);

/// The network the graph builder simulates (closed-loop co-simulation
/// entry point) and the simulation config that extraction uses.
snn::Network build_synthetic_network(const SyntheticConfig& config);
snn::SimulationConfig synthetic_sim_config(const SyntheticConfig& config);

/// Parses "synth_MxN" / "MxN" (e.g. "synth_3x200", "1x600"); throws
/// std::invalid_argument on malformed names.
SyntheticConfig parse_synthetic_name(const std::string& name);

}  // namespace snnmap::apps
