// Fixture: asymmetric key sets — "noc.read_only" is parsed but never
// serialized, "noc.write_only" is serialized but never parsed back.
#include "core/config_io.hpp"

namespace fixture {

void from_config(const Config& config, Flow& flow) {
  flow.a = config.int_or("noc.read_only", flow.a);
  flow.b = config.int_or("noc.covered", flow.b);
}

void to_config(const Flow& flow, Config& config) {
  config.set("noc.write_only", std::to_string(flow.a));
  config.set("noc.covered", std::to_string(flow.b));
}

}  // namespace fixture
