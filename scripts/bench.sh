#!/usr/bin/env bash
# Simulator perf tracking: runs the BM_NocSimulator, BM_SnnSimulator,
# BM_CoSimulator, BM_WindowEnergy/energy-accounting and BM_FaultedNoc
# suites (Release) and writes BENCH_noc.json / BENCH_snn.json /
# BENCH_cosim.json / BENCH_energy.json / BENCH_faults.json at the repo root
# so the simulated-packets/sec, simulated-ms/sec, co-sim steps/sec,
# energy-accounting-overhead and fault-injection-overhead trajectories are
# recorded PR over PR.
#
#   scripts/bench.sh [extra google-benchmark flags...]
#
# Requires Google Benchmark (the script aborts with a notice when the
# library is absent and the *_sim_benchmarks targets were not generated).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-release}
JOBS=${JOBS:-$(nproc)}
NOC_OUT=${NOC_OUT:-BENCH_noc.json}
SNN_OUT=${SNN_OUT:-BENCH_snn.json}
COSIM_OUT=${COSIM_OUT:-BENCH_cosim.json}
ENERGY_OUT=${ENERGY_OUT:-BENCH_energy.json}
FAULTS_OUT=${FAULTS_OUT:-BENCH_faults.json}

configure_log=$(cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=Release \
  -DSNNMAP_BUILD_TESTS=OFF \
  -DSNNMAP_BUILD_EXAMPLES=OFF 2>&1) \
  || { printf '%s\n' "$configure_log" >&2; exit 1; }
printf '%s\n' "$configure_log"
# bench/CMakeLists.txt prints this notice and skips the benchmark targets;
# abort up front so the build step below only ever fails on real compile
# errors (never on 'unknown target', never falling back to stale binaries).
if grep -q "Google Benchmark not found" <<<"$configure_log"; then
  echo "benchmark targets not generated (Google Benchmark missing?)" >&2
  exit 1
fi
cmake --build "$BUILD_DIR" -j "$JOBS" \
  --target noc_sim_benchmarks --target snn_sim_benchmarks \
  --target cosim_benchmarks --target energy_benchmarks \
  --target fault_benchmarks

run_suite() {
  local binary=$1
  local out=$2
  shift 2
  if [[ ! -x "$BUILD_DIR/bench/$binary" ]]; then
    echo "$binary was not built (Google Benchmark missing?)" >&2
    exit 1
  fi
  "$BUILD_DIR/bench/$binary" \
    --benchmark_min_time=2 \
    --benchmark_out="$out" \
    --benchmark_out_format=json \
    "$@"
  # A suite that ran but produced no (or an empty) JSON would silently hold
  # the trajectory at its previous value; fail loudly instead.
  if [[ ! -s "$out" ]]; then
    echo "$binary did not produce $out" >&2
    exit 1
  fi
  echo "wrote $out"
}

run_suite noc_sim_benchmarks "$NOC_OUT" "$@"
run_suite snn_sim_benchmarks "$SNN_OUT" "$@"
run_suite cosim_benchmarks "$COSIM_OUT" "$@"
run_suite energy_benchmarks "$ENERGY_OUT" "$@"
run_suite fault_benchmarks "$FAULTS_OUT" "$@"

# Belt-and-braces: every configured output must exist and be non-empty, so
# adding a suite above without its run_suite line (how BENCH_faults.json
# went missing) can never pass again.
for out in "$NOC_OUT" "$SNN_OUT" "$COSIM_OUT" "$ENERGY_OUT" "$FAULTS_OUT"; do
  if [[ ! -s "$out" ]]; then
    echo "configured benchmark output $out was not produced" >&2
    exit 1
  fi
done
