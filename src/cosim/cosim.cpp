#include "cosim/cosim.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <tuple>
#include <unordered_set>
#include <utility>

#include "util/hash.hpp"
#include "util/log.hpp"

namespace snnmap::cosim {
namespace {

/// Rewrites `config.noc` into the effective lockstep interconnect config
/// (what CoSimulator::config() reports and the internal NocSimulator
/// runs).  Runs before any validation, so it must tolerate garbage inputs
/// (the member constructors reject them right after).
CoSimConfig with_lockstep_noc(CoSimConfig config) {
  // The closed loop *consumes* the delivery log; streaming mode would
  // starve it.  Forced rather than rejected: every other NocConfig field
  // keeps its meaning.
  config.noc.collect_delivered = true;
  // max_cycles is a drain bound for one-shot traces; in lockstep mode the
  // virtual timeline is steps x cycles_per_timestep by construction, so a
  // long-but-healthy run must not trip it.  Raise it to cover the run (a
  // congested fabric carrying backlog to the end *is* the measured
  // behavior); a larger user-provided bound is kept.  max_cycles == 0
  // stays 0: it is a degenerate config the NocSimulator constructor
  // rejects, and raising it here would mask that error.
  const std::uint32_t cpt = config.cycles_per_timestep;
  if (cpt != 0 && config.noc.max_cycles != 0) {
    const std::uint64_t span = snn::simulation_step_count(config.snn) + 2;
    if (span <= noc::kNoCycleLimit / cpt) {
      config.noc.max_cycles =
          std::max<std::uint64_t>(config.noc.max_cycles, span * cpt);
    }
  }
  // Rate-based fault sampling needs a horizon; in lockstep mode the natural
  // one is the run's own virtual timeline.  Auto-fill only when the user
  // set rates but no horizon (an explicit horizon is respected, and a
  // zero-rate config stays untouched).  NaN/negative rates compare false
  // here and reach FaultConfig::validate() unchanged.
  noc::FaultConfig& faults = config.noc.faults;
  const bool rated =
      faults.link_fault_rate > 0.0 || faults.router_fault_rate > 0.0 ||
      faults.tile_fault_rate > 0.0 || faults.transient_link_rate > 0.0;
  if (cpt != 0 && rated && faults.horizon_cycles == 0) {
    const std::uint64_t span = snn::simulation_step_count(config.snn) + 2;
    if (span <= noc::kNoCycleLimit / cpt) {
      faults.horizon_cycles = span * cpt;
    }
  }
  return config;
}

std::uint64_t key_of(std::uint32_t source, noc::TileId tile) noexcept {
  return (static_cast<std::uint64_t>(source) << 32) | tile;
}

}  // namespace

const char* to_string(DvfsPolicyKind kind) noexcept {
  switch (kind) {
    case DvfsPolicyKind::kFixed: return "fixed";
    case DvfsPolicyKind::kUtilizationThreshold:
      return "utilization-threshold";
    case DvfsPolicyKind::kDeadlineSlack: return "deadline-slack";
  }
  return "?";
}

DvfsPolicyKind dvfs_policy_from_string(const std::string& name) {
  if (name == "fixed") return DvfsPolicyKind::kFixed;
  if (name == "utilization-threshold") {
    return DvfsPolicyKind::kUtilizationThreshold;
  }
  if (name == "deadline-slack") return DvfsPolicyKind::kDeadlineSlack;
  throw std::invalid_argument("unknown DVFS policy: '" + name + "'");
}

CoSimulator::CoSimulator(snn::Network& network,
                         const core::Partition& partition,
                         const core::Placement& placement,
                         noc::Topology topology, CoSimConfig config)
    : config_(with_lockstep_noc(std::move(config))),
      network_(&network),
      sim_(network, config_.snn),
      noc_(std::move(topology), config_.noc),
      partition_(partition),
      placement_(placement) {
  if (config_.cycles_per_timestep == 0) {
    throw std::invalid_argument(
        "CoSimulator: cycles_per_timestep must be >= 1 (a zero-cycle window "
        "could never carry a packet)");
  }
  if (config_.receive_queue_depth == 0) {
    throw std::invalid_argument(
        "CoSimulator: receive_queue_depth must be >= 1 (use "
        "kUnboundedReceiveQueue to disable drops)");
  }
  if (config_.injection_jitter_cycles >= config_.cycles_per_timestep) {
    throw std::invalid_argument(
        "CoSimulator: injection_jitter_cycles must be below "
        "cycles_per_timestep (a spike must be offered within its own "
        "window)");
  }
  // DVFS policy sanity (negated comparisons so NaN fails every check).
  const DvfsPolicy& dvfs = config_.dvfs;
  if (!(dvfs.min_scale > 0.0) || !(dvfs.min_scale <= 1.0)) {
    throw std::invalid_argument(
        "CoSimulator: dvfs.min_scale must be in (0, 1] (the fabric cannot "
        "run at zero or above-nominal frequency)");
  }
  if (!(dvfs.low_utilization >= 0.0) ||
      !(dvfs.low_utilization < dvfs.high_utilization) ||
      !(dvfs.high_utilization <= 1.0)) {
    throw std::invalid_argument(
        "CoSimulator: dvfs utilization thresholds must satisfy 0 <= low < "
        "high <= 1");
  }
  if (!(dvfs.slack_fraction >= 0.0) || !(dvfs.slack_fraction <= 1.0)) {
    throw std::invalid_argument(
        "CoSimulator: dvfs.slack_fraction must be in [0, 1]");
  }
  // Retry protocol sanity: an enabled protocol with a zero retry budget,
  // zero backoff, or zero timeout is a misconfiguration, not a policy.
  const AerRetryConfig& retry = config_.retry;
  if (retry.enabled) {
    if (retry.max_retries == 0) {
      throw std::invalid_argument(
          "CoSimulator: retry.max_retries must be >= 1 when the retry "
          "protocol is enabled (use enabled = false to disable retries)");
    }
    if (retry.backoff_windows == 0) {
      throw std::invalid_argument(
          "CoSimulator: retry.backoff_windows must be >= 1 when the retry "
          "protocol is enabled (a zero backoff would retransmit inside the "
          "window the copy is still in flight in)");
    }
    if (retry.timeout_windows == 0) {
      throw std::invalid_argument(
          "CoSimulator: retry.timeout_windows must be >= 1 when the retry "
          "protocol is enabled (a zero timeout loses every late copy "
          "before its first retry)");
    }
  }
  const std::uint32_t n = network.neuron_count();
  if (partition.neuron_count() != n) {
    throw std::invalid_argument(
        "CoSimulator: partition covers " +
        std::to_string(partition.neuron_count()) + " neurons, network has " +
        std::to_string(n));
  }
  if (!partition.is_complete()) {
    throw std::invalid_argument(
        "CoSimulator: partition must assign every neuron");
  }
  if (placement.size() != partition.crossbar_count()) {
    throw std::invalid_argument(
        "CoSimulator: placement size must match the crossbar count");
  }
  std::vector<std::uint8_t> tile_used(noc_.topology().tile_count(), 0);
  for (const noc::TileId tile : placement) {
    if (tile >= tile_used.size()) {
      throw std::invalid_argument("CoSimulator: placement tile out of range");
    }
    if (tile_used[tile]) {
      throw std::invalid_argument(
          "CoSimulator: placement maps two crossbars to one tile");
    }
    tile_used[tile] = 1;
  }

  // Remap-on-failure machinery: the remapper is constructed eagerly so a
  // partition/architecture mismatch fails at construction (not mid-run, at
  // the first fault), and the network's edge list is cached once for the
  // observed-traffic graphs each evacuation builds.
  if (config_.failure_remap.enabled) {
    remapper_.emplace(config_.failure_remap.arch, partition_,
                      config_.failure_remap.remap);
    tile_crossbar_.assign(noc_.topology().tile_count(), core::kUnassigned);
    for (core::CrossbarId k = 0;
         k < static_cast<core::CrossbarId>(placement_.size()); ++k) {
      tile_crossbar_[placement_[k]] = k;
    }
    graph_edges_.reserve(network.synapses().size());
    for (const snn::Synapse& syn : network.synapses()) {
      graph_edges_.push_back({syn.pre, syn.post, syn.weight});
    }
  }

  rebuild_mapping();  // throws on live-STDP plastic cuts

  steps_ = snn::simulation_step_count(config_.snn);
}

void CoSimulator::rebuild_mapping() {
  // Cut mask + per-neuron transport tables, all in the Network's fan-out
  // order so flush verdicts align with the engine's enumeration.
  const std::uint32_t n = network_->neuron_count();
  const auto& part = partition_.assignment();
  const auto& synapses = network_->synapses();
  const auto& offsets = network_->fanout_offsets();
  const auto& order = network_->fanout_synapses();
  std::vector<std::uint8_t> cut(synapses.size(), 0);
  for (std::size_t s = 0; s < synapses.size(); ++s) {
    cut[s] = part[synapses[s].pre] != part[synapses[s].post] ? 1 : 0;
  }

  source_tile_.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    source_tile_[i] = placement_[part[i]];
  }
  remote_tile_.clear();
  remote_post_.clear();
  remote_weight_.clear();
  remote_delay_.clear();
  dest_tiles_.clear();
  remote_offsets_.assign(n + 1, 0);
  dest_offsets_.assign(n + 1, 0);
  std::vector<noc::TileId> tiles_scratch;
  for (std::uint32_t i = 0; i < n; ++i) {
    tiles_scratch.clear();
    for (std::uint32_t k = offsets[i]; k < offsets[i + 1]; ++k) {
      const snn::Synapse& syn = synapses[order[k]];
      if (!cut[order[k]]) continue;
      const noc::TileId tile = placement_[part[syn.post]];
      remote_tile_.push_back(tile);
      remote_post_.push_back(syn.post);
      remote_weight_.push_back(syn.weight);
      remote_delay_.push_back(syn.delay_steps);
      tiles_scratch.push_back(tile);
    }
    remote_offsets_[i + 1] =
        static_cast<std::uint32_t>(remote_tile_.size());
    std::sort(tiles_scratch.begin(), tiles_scratch.end());
    tiles_scratch.erase(
        std::unique(tiles_scratch.begin(), tiles_scratch.end()),
        tiles_scratch.end());
    dest_tiles_.insert(dest_tiles_.end(), tiles_scratch.begin(),
                       tiles_scratch.end());
    dest_offsets_[i + 1] = static_cast<std::uint32_t>(dest_tiles_.size());
  }

  sim_.cut_remote_synapses(cut);
}

CoSimResult CoSimulator::run() {
  if (ran_) {
    throw std::logic_error(
        "CoSimulator: run() is one-shot (the SNN engine's state is "
        "consumed); build a fresh CoSimulator for another run");
  }
  ran_ = true;
  const std::uint32_t nominal = config_.cycles_per_timestep;
  const std::uint32_t jitter = config_.injection_jitter_cycles;
  const bool bounded =
      config_.receive_queue_depth != kUnboundedReceiveQueue;
  const DvfsPolicy& dvfs = config_.dvfs;

  CoSimResult out;
  FidelityReport& fid = out.fidelity;
  fid.steps = steps_;
  fid.per_step_transit.assign(steps_, util::Accumulator{});
  fid.per_step_misses.assign(steps_, 0);
  fid.per_step_energy_pj.assign(steps_, 0.0);
  fid.per_step_cycles.assign(steps_, nominal);
  fid.transit_hist = util::Histogram(
      0.0,
      static_cast<double>(
          std::max<std::uint64_t>(std::uint64_t{nominal} * 4, 64)),
      64);

  noc_.begin();
  // Protocol-level trace events (DVFS decisions, AER retries, remap
  // triggers) interleave with the fabric's flit-lifecycle stream on the
  // shared cycle clock; begin() configured the tracer, so `trace_on` is the
  // session's hoisted gate exactly like the NocSimulator's own.
  obs::Tracer& tracer = noc_.tracer();
  const bool trace_on = tracer.enabled();
  std::vector<std::uint64_t> emit_counter(source_tile_.size(), 0);
  std::vector<std::uint32_t> window_accepts(noc_.topology().tile_count(), 0);
  std::vector<noc::TileId> touched_tiles;
  // snnmap-lint: allow(unordered-iteration) -- membership-only (insert /
  // count / clear) per-window dedup; never iterated, order cannot leak.
  std::unordered_set<std::uint64_t> in_window;  // (source, tile) delivered
  std::vector<snn::Simulator::RemoteVerdict> verdicts;
  std::vector<noc::SpikePacketEvent> window_traffic;
  bool warned_halt = false;

  // AER retry state.  The pending map is keyed (source neuron, emission
  // step, destination tile) — exactly what a delivered copy carries, since
  // retransmits travel with their *original* emission step — and std::map's
  // sorted iteration keeps the retransmit schedule deterministic.  Expired
  // keys park in `expired` so a copy limping in after the source gave up is
  // recognized as stale rather than misread as a duplicate.
  ResilienceReport& resil = out.resilience;
  const AerRetryConfig& retry = config_.retry;
  const bool retry_on = retry.enabled;
  const bool remap_on = config_.failure_remap.enabled;
  struct RetryState {
    std::uint32_t attempts = 0;
    std::uint64_t next_retry = 0;  // step index of the next retransmit
    std::uint64_t expire = 0;      // step index the entry times out at
  };
  using RetryKey = std::tuple<snn::NeuronId, std::uint64_t, noc::TileId>;
  std::map<RetryKey, RetryState> pending;
  std::set<RetryKey> expired;
  std::vector<noc::SpikePacketEvent> retrans_traffic;

  // DVFS state: the scale the next window will run at, stepped from the
  // previous window's observations (deterministic, so batch fan-out stays
  // bit-identical).  Scale-weighted activity accumulates in doubles; with
  // the fixed policy every weight is exactly 1.0, the sums stay exact
  // integers, and fabric_energy_pj reproduces the one-shot
  // NocStats::global_energy_pj bit for bit.
  double scale = 1.0;
  std::uint64_t window_start = 0;
  double prev_utilization = 0.0;
  bool prev_pressure = false;  // miss/drop/backlog in the previous window
  double weighted_codec = 0.0;
  double weighted_link = 0.0;  // on-chip hops only
  double weighted_offchip = 0.0;
  double weighted_router = 0.0;
  const auto next_scale = [&](double current) {
    switch (dvfs.kind) {
      case DvfsPolicyKind::kFixed: return 1.0;
      case DvfsPolicyKind::kUtilizationThreshold:
        if (prev_utilization > dvfs.high_utilization) {
          return std::min(1.0, current * 2.0);
        }
        if (prev_utilization < dvfs.low_utilization) {
          return std::max(dvfs.min_scale, current * 0.5);
        }
        return current;
      case DvfsPolicyKind::kDeadlineSlack:
        if (prev_pressure) return 1.0;  // missed timing: back to nominal
        if (1.0 - prev_utilization >= dvfs.slack_fraction) {
          return std::max(dvfs.min_scale, current * 0.5);
        }
        return current;
    }
    return 1.0;
  };

  for (std::uint64_t t = 0; t < steps_; ++t) {
    // 0. Pick this window's fabric frequency (first window runs nominal —
    //    there is nothing observed yet).
    if (t > 0) scale = next_scale(scale);
    std::uint32_t window_cycles = nominal;
    if (scale < 1.0) {
      window_cycles = static_cast<std::uint32_t>(
          static_cast<double>(nominal) * scale + 0.5);
      // A window must fit the encoder jitter and carry >= 1 cycle.
      window_cycles = std::max<std::uint32_t>(window_cycles, jitter + 1);
    }
    const std::uint64_t window_end = window_start + window_cycles;
    if (trace_on && dvfs.kind != DvfsPolicyKind::kFixed) {
      tracer.record(window_start, obs::TraceEventType::kDvfsDecision,
                    window_cycles, nominal, t);
    }

    // 1. Integrate step t with deliveries deferred.
    sim_.step_deferred();
    const std::vector<snn::NeuronId>& spikes = sim_.deferred_spikes();

    // 2. Encode this step's remote fan-out as AER multicast packets.
    window_traffic.clear();
    for (const snn::NeuronId i : spikes) {
      const std::uint32_t db = dest_offsets_[i];
      const std::uint32_t de = dest_offsets_[i + 1];
      if (db == de) continue;  // purely local fan-out
      noc::SpikePacketEvent ev;
      ev.source_neuron = i;
      ev.source_tile = source_tile_[i];
      ev.emit_step = t;
      ev.emit_cycle =
          window_start +
          (jitter != 0
               ? util::spike_jitter_hash(i, emit_counter[i]) % jitter
               : 0);
      ++emit_counter[i];
      ev.dest_tiles.assign(dest_tiles_.begin() + db,
                           dest_tiles_.begin() + de);
      ++fid.packets_offered;
      fid.copies_offered += de - db;
      window_traffic.push_back(std::move(ev));
    }
    if (!window_traffic.empty()) {
      noc_.enqueue(std::move(window_traffic));
      window_traffic.clear();
    }

    // 3. Advance the fabric one window, then price its activity at the
    //    frequency it ran at.
    if (!noc_.halted()) {
      noc_.run_until(window_end);
    } else if (!warned_halt) {
      util::log_warn(
          "CoSimulator: NoC hit max_cycles; remaining traffic counts as "
          "undelivered");
      warned_halt = true;
    }
    const noc::WindowEnergySample sample = noc_.close_energy_window();
    const double realized =
        static_cast<double>(window_cycles) / static_cast<double>(nominal);
    const double escale = hw::EnergyModel::dvfs_energy_scale(realized);
    weighted_codec += escale * static_cast<double>(sample.codec_events());
    weighted_link += escale * static_cast<double>(sample.link_hops -
                                                  sample.offchip_link_hops);
    weighted_offchip +=
        escale * static_cast<double>(sample.offchip_link_hops);
    weighted_router +=
        escale * static_cast<double>(sample.router_traversals);
    const double step_energy = escale * sample.energy_pj;
    fid.per_step_energy_pj[t] = step_energy;
    fid.per_step_cycles[t] = window_cycles;
    fid.window_energy_pj.add(step_energy);
    fid.freq_scale.add(realized);
    const std::uint64_t pressure_before =
        fid.deadline_misses + fid.receive_drops;

    // 4. Convert deliveries back to synaptic arrivals.  In-window copies
    //    (emitted this step) flush with exact local timing; late copies
    //    re-enter the destination crossbar now, which stretches their
    //    effective synaptic delay by the windows they spent in flight.
    for (const noc::TileId tile : touched_tiles) window_accepts[tile] = 0;
    touched_tiles.clear();
    in_window.clear();
    const auto delivered = noc_.drain_delivered();
    for (const noc::DeliveredSpike& d : delivered) {
      const std::uint64_t transit = d.recv_cycle - d.emit_cycle;
      // Deliveries are drained every window, so everything observed here
      // arrived during window t (variable DVFS spans make a division by a
      // fixed budget meaningless anyway).
      const std::uint64_t arrival_step = t;
      ++fid.copies_arrived;
      fid.transit_cycles.add(static_cast<double>(transit));
      fid.transit_hist.add(static_cast<double>(transit));
      fid.per_step_transit[arrival_step].add(static_cast<double>(transit));

      if (bounded) {
        if (window_accepts[d.dest_tile] == 0) {
          touched_tiles.push_back(d.dest_tile);
        }
        if (++window_accepts[d.dest_tile] > config_.receive_queue_depth) {
          ++fid.receive_drops;
          continue;  // dropped at the decoder: these events never happen
        }
      }
      ++fid.copies_accepted;
      if (d.emit_step == t) {
        in_window.insert(key_of(d.source_neuron, d.dest_tile));
      } else {
        ++fid.deadline_misses;
        ++fid.per_step_misses[d.emit_step];
        bool apply = true;
        if (retry_on) {
          // First arrival of a (spike, destination) pair settles its retry
          // entry; anything after that is a duplicate (both the original
          // and a retransmit made it) or stale (the source already gave up
          // and the loss was accounted) and must not be applied twice.
          const RetryKey key{d.source_neuron, d.emit_step, d.dest_tile};
          const auto it = pending.find(key);
          if (it != pending.end()) {
            if (it->second.attempts > 0) ++resil.retry_recoveries;
            pending.erase(it);
          } else if (expired.erase(key) != 0) {
            ++resil.stale_arrivals;
            apply = false;
          } else {
            ++resil.duplicate_arrivals;
            apply = false;
          }
        }
        if (apply) {
          // Late arrival: apply this packet's fan-out records on the
          // destination crossbar with local synaptic timing from *now*.
          const std::uint32_t rb = remote_offsets_[d.source_neuron];
          const std::uint32_t re = remote_offsets_[d.source_neuron + 1];
          for (std::uint32_t r = rb; r < re; ++r) {
            if (remote_tile_[r] != d.dest_tile) continue;
            sim_.inject_remote(remote_post_[r],
                               static_cast<double>(remote_weight_[r]),
                               remote_delay_[r]);
          }
        }
      }
    }

    // 5. Flush step t: local records deliver unconditionally; cut records
    //    deliver exactly when their packet copy landed in-window.
    verdicts.clear();
    verdicts.reserve(sim_.deferred_remote_records());
    for (const snn::NeuronId i : spikes) {
      const std::uint32_t rb = remote_offsets_[i];
      const std::uint32_t re = remote_offsets_[i + 1];
      for (std::uint32_t r = rb; r < re; ++r) {
        verdicts.push_back(
            in_window.count(key_of(i, remote_tile_[r])) != 0
                ? snn::Simulator::RemoteVerdict::kDeliver
                : snn::Simulator::RemoteVerdict::kWithhold);
      }
    }
    sim_.flush_deferred(verdicts);

    // 6. Feed the DVFS policy: how busy was the window, and did anything
    //    miss its deadline (late accept, drop, or carried backlog)?
    prev_utilization = sample.utilization();
    prev_pressure =
        fid.deadline_misses + fid.receive_drops > pressure_before ||
        !noc_.idle();

    // 7. Retry bookkeeping: open an entry per copy of step t that failed
    //    to land in-window, then sweep the whole book — expiries first
    //    (the delivery is abandoned and the loss accounted), then due
    //    retransmits, coalesced per (source, emission step) into one
    //    multicast packet entering the fabric at the next window.
    if (retry_on) {
      for (const snn::NeuronId i : spikes) {
        const std::uint32_t db = dest_offsets_[i];
        const std::uint32_t de = dest_offsets_[i + 1];
        for (std::uint32_t k = db; k < de; ++k) {
          const noc::TileId tile = dest_tiles_[k];
          if (in_window.count(key_of(i, tile)) != 0) continue;
          pending.emplace(
              RetryKey{i, t, tile},
              RetryState{0, t + retry.backoff_windows,
                         t + retry.timeout_windows});
        }
      }
      if (!pending.empty()) {
        retrans_traffic.clear();
        for (auto it = pending.begin(); it != pending.end();) {
          const RetryKey& key = it->first;
          RetryState& st = it->second;
          if (t >= st.expire) {
            ++resil.spikes_lost_timeout;
            expired.insert(key);
            it = pending.erase(it);
            continue;
          }
          if (t >= st.next_retry && st.attempts < retry.max_retries) {
            const snn::NeuronId src = std::get<0>(key);
            const std::uint64_t estep = std::get<1>(key);
            if (retrans_traffic.empty() ||
                retrans_traffic.back().source_neuron != src ||
                retrans_traffic.back().emit_step != estep) {
              noc::SpikePacketEvent ev;
              ev.source_neuron = src;
              ev.source_tile = source_tile_[src];
              ev.emit_step = estep;  // original step: always the late path
              ev.emit_cycle = window_end;
              retrans_traffic.push_back(std::move(ev));
              ++resil.retransmit_packets;
              ++fid.packets_offered;
              resil.retransmit_energy_pj +=
                  config_.noc.energy.retransmit_pj;
            }
            retrans_traffic.back().dest_tiles.push_back(std::get<2>(key));
            ++resil.retransmit_copies;
            ++fid.copies_offered;
            ++st.attempts;
            if (trace_on) {
              tracer.record(window_end, obs::TraceEventType::kAerRetry, src,
                            std::get<2>(key), st.attempts);
            }
            st.next_retry =
                t + (static_cast<std::uint64_t>(retry.backoff_windows)
                     << std::min<std::uint32_t>(st.attempts, 20U));
          }
          ++it;
        }
        if (!retrans_traffic.empty()) {
          noc_.enqueue(std::move(retrans_traffic));
          retrans_traffic.clear();
        }
      }
    }

    // 8. Remap-on-failure: a tile (crossbar) that died this window gets
    //    its neurons evacuated onto live crossbars, scored against the
    //    traffic observed so far, and the transport tables + engine cut
    //    mask rebuilt — all between closed steps, so determinism holds.
    if (remap_on) {
      const std::vector<noc::TileId> dead = noc_.take_dead_tiles();
      if (!dead.empty()) {
        std::vector<core::CrossbarId> dead_xbars;
        for (const noc::TileId tile : dead) {
          const core::CrossbarId k = tile_crossbar_[tile];
          if (k != core::kUnassigned && !remapper_->crossbar_dead(k)) {
            dead_xbars.push_back(k);
          }
        }
        if (!dead_xbars.empty()) {
          const snn::SnnGraph observed = snn::SnnGraph::from_parts(
              static_cast<std::uint32_t>(source_tile_.size()), graph_edges_,
              sim_.spikes(), sim_.now_ms());
          const core::EvacuationReport rep =
              remapper_->evacuate(dead_xbars, observed);
          ++resil.remap_events;
          resil.neurons_migrated += rep.evacuated;
          if (trace_on) {
            tracer.record(window_end, obs::TraceEventType::kRemapTrigger,
                          static_cast<std::uint32_t>(dead_xbars.size()),
                          rep.evacuated, rep.stranded);
          }
          // evacuate() rescans every neuron still on dead hardware, so its
          // stranded count is the *current* stranded population, not a delta.
          resil.neurons_stranded = rep.stranded;
          partition_ = remapper_->partition();
          rebuild_mapping();
        }
      }
    }
    window_start = window_end;
  }

  resil.pending_at_end = pending.size();
  out.snn = sim_.result();
  fid.total_spikes = out.snn.total_spikes;
  fid.undelivered = fid.copies_offered - fid.copies_arrived;
  fid.fabric_energy_pj = config_.noc.energy.activity_energy_pj(
      weighted_codec, weighted_link, weighted_router, weighted_offchip);
  double max_window_energy = 0.0;
  for (const double e : fid.per_step_energy_pj) {
    max_window_energy = std::max(max_window_energy, e);
  }
  fid.energy_hist = util::Histogram(
      0.0, max_window_energy > 0.0 ? max_window_energy : 1.0, 32);
  for (const double e : fid.per_step_energy_pj) fid.energy_hist.add(e);
  noc::NocRunResult nr = noc_.finish();
  out.noc = std::move(nr.stats);
  fid.congestion = std::move(nr.congestion);
  out.trace = std::move(nr.trace);
  out.trace_digest = nr.trace_digest;
  out.trace_recorded = nr.trace_recorded;
  out.metrics = std::move(nr.metrics);
  resil.noc_faults = out.noc.fault;
  return out;
}

}  // namespace snnmap::cosim
