// Neuromorphic hardware architecture description (Fig. 1 of the paper).
//
// An architecture is C crossbars of Nc neurons each, joined by a
// time-multiplexed global-synapse interconnect.  The paper's reference
// hardware is CxQuad (4 crossbars, NoC-tree); TrueNorth/HiCANN use NoC-mesh.
// The architecture is a pure value type: the NoC simulator and the
// partitioners both consume it.
//
// Beyond the paper's single-chip fabrics, the description carries a chip
// boundary (`chip_count`): tiles are split contiguously across chips, links
// whose endpoints sit on different chips are "off-chip" and pay a distinct
// energy (hw::EnergyModel::offchip_link_hop_pj) and extra latency in the
// NoC simulator.  The dragonfly / fat-tree kinds are the large-system
// topologies the scale-out roadmap item calls for.
#pragma once

#include <cstdint>
#include <string>

namespace snnmap::hw {

/// Global-synapse interconnect families.  Mesh/tree/ring are the paper's
/// single-chip fabrics (Sec. II: "The commonly used ones are NoC-tree
/// (CxQuad) and NoC-mesh (TrueNorth, HiCANN)"); dragonfly and fat-tree are
/// the multi-chip scale-out fabrics.
enum class InterconnectKind : std::uint8_t {
  kMesh,
  kTree,
  kRing,
  kDragonfly,
  kFattree,
};

const char* to_string(InterconnectKind kind) noexcept;

/// Parse from the names used in config files ("mesh" / "tree" / "ring" /
/// "dragonfly" / "fattree"); throws std::invalid_argument on unknown names
/// (the message lists every accepted kind).
InterconnectKind interconnect_from_string(const std::string& name);

struct Architecture {
  std::uint32_t crossbar_count = 4;
  std::uint32_t neurons_per_crossbar = 256;
  InterconnectKind interconnect = InterconnectKind::kTree;
  /// Fan-out of internal tree routers (CxQuad joins 4 leaves under one hub).
  std::uint32_t tree_arity = 4;
  /// Interconnect cycles per simulated millisecond: the time-multiplexing
  /// ratio between the SNN step and the NoC clock.
  std::uint32_t cycles_per_ms = 1000;
  /// Chips the tile array is split across (contiguous tile ranges).  1 =
  /// the paper's single-chip devices; > 1 tags inter-chip links off-chip.
  std::uint32_t chip_count = 1;
  /// Dragonfly parameters (kDragonfly): `a` routers per group, `g` groups,
  /// `h` global channels per router.  Balanced when a*h == g-1.
  std::uint32_t dragonfly_arity = 4;
  std::uint32_t dragonfly_groups = 5;
  std::uint32_t dragonfly_global = 1;
  /// Fat-tree radix (kFattree): k-port switches, k^2/2 edge tiles.
  std::uint32_t fattree_k = 4;

  /// Total neuron capacity of the device.
  std::uint64_t capacity() const noexcept {
    return static_cast<std::uint64_t>(crossbar_count) * neurons_per_crossbar;
  }

  /// True when a network of `neurons` fits.
  bool fits(std::uint64_t neurons) const noexcept {
    return neurons <= capacity();
  }

  /// Mesh side lengths (width >= height, width*height >= crossbar_count).
  std::uint32_t mesh_width() const noexcept;
  std::uint32_t mesh_height() const noexcept;

  /// Tiles the configured interconnect instantiates (>= crossbar_count for
  /// mesh; exactly crossbar_count for tree/ring; fixed by the dragonfly /
  /// fat-tree parameters).
  std::uint32_t interconnect_tile_count() const noexcept;

  /// Tiles per chip under the contiguous split (last chip may be short).
  std::uint32_t tiles_per_chip() const noexcept;

  /// Throws std::invalid_argument on degenerate parameters: zero crossbars,
  /// zero-neuron crossbars, zero chips (or more chips than tiles), tree
  /// arity < 2, degenerate dragonfly (needs a >= 2, g >= 2, h >= 1 and
  /// a*h >= g-1 for a full set of global channels), odd or < 2 fat-tree
  /// radix, or a dragonfly/fat-tree whose tile capacity cannot seat every
  /// crossbar.
  void validate() const;

  /// The CxQuad reference device: 1024 neurons in 4 crossbars of 256,
  /// NoC-tree interconnect (Sec. I/II).
  static Architecture cxquad() noexcept;

  /// Smallest architecture of the given crossbar size and interconnect that
  /// holds `neurons` neurons (used by the architecture-exploration bench,
  /// Fig. 6, which sweeps neurons_per_crossbar and derives crossbar_count).
  /// Dragonfly/fat-tree parameters are grown to seat the crossbars.
  static Architecture sized_for(std::uint64_t neurons,
                                std::uint32_t neurons_per_crossbar,
                                InterconnectKind kind);

  /// One-line human-readable description.
  std::string describe() const;
};

}  // namespace snnmap::hw
