#include "hw/energy_model.hpp"

#include <gtest/gtest.h>

namespace snnmap::hw {
namespace {

TEST(EnergyModel, DefaultsArePositive) {
  const EnergyModel m = EnergyModel::cxquad();
  EXPECT_GT(m.crossbar_event_pj, 0.0);
  EXPECT_GT(m.link_hop_pj, 0.0);
  EXPECT_GT(m.router_flit_pj, 0.0);
  EXPECT_GT(m.aer_codec_pj, 0.0);
}

TEST(EnergyModel, PacketEnergyGrowsWithHops) {
  const EnergyModel m;
  EXPECT_LT(m.packet_energy_pj(0), m.packet_energy_pj(1));
  EXPECT_LT(m.packet_energy_pj(1), m.packet_energy_pj(5));
  // Linear: the increment per hop is link + router.
  const double inc = m.packet_energy_pj(3) - m.packet_energy_pj(2);
  EXPECT_NEAR(inc, m.link_hop_pj + m.router_flit_pj, 1e-12);
}

TEST(EnergyModel, ZeroHopStillPaysCodecAndOneRouter) {
  const EnergyModel m;
  EXPECT_NEAR(m.packet_energy_pj(0), m.aer_codec_pj + m.router_flit_pj, 1e-12);
}

TEST(EnergyModel, FromConfigOverridesSelectively) {
  util::Config cfg = util::Config::parse(
      "energy:\n"
      "  link_hop_pj: 99.0\n"
      "  aer_codec_pj: 0.5\n");
  const EnergyModel m = EnergyModel::from_config(cfg);
  const EnergyModel d;
  EXPECT_EQ(m.link_hop_pj, 99.0);
  EXPECT_EQ(m.aer_codec_pj, 0.5);
  EXPECT_EQ(m.crossbar_event_pj, d.crossbar_event_pj);  // untouched
  EXPECT_EQ(m.router_flit_pj, d.router_flit_pj);
}

TEST(EnergyModel, ToConfigRoundTrips) {
  EnergyModel m;
  m.link_hop_pj = 12.25;
  m.crossbar_event_pj = 3.5;
  util::Config cfg;
  m.to_config(cfg);
  const EnergyModel back = EnergyModel::from_config(cfg);
  EXPECT_NEAR(back.link_hop_pj, 12.25, 1e-9);
  EXPECT_NEAR(back.crossbar_event_pj, 3.5, 1e-9);
}

}  // namespace
}  // namespace snnmap::hw
