// CoSimulator unit tests: config/mapping validation parity with the other
// engines, the lockstep loop's fidelity accounting, congestion-induced
// divergence, bounded-receive-queue drops, and the snn::Simulator deferred
// seam's own contract.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "core/batch_eval.hpp"
#include "core/partition.hpp"
#include "core/placement.hpp"
#include "cosim/cosim.hpp"
#include "cosim/fidelity.hpp"
#include "noc/topology.hpp"
#include "snn/network.hpp"
#include "snn/simulator.hpp"
#include "util/rng.hpp"

namespace snnmap::cosim {
namespace {

/// Two Poisson-driven LIF populations wired across both directions, with a
/// multi-step delay so remote timing matters.
snn::Network two_block_network(std::uint64_t wiring_seed = 5) {
  snn::Network net;
  util::Rng rng(wiring_seed);
  const auto in = net.add_poisson_group("in", 12, 60.0);
  const auto a = net.add_lif_group("a", 12);
  const auto b = net.add_lif_group("b", 12);
  net.connect_random(in, a, 0.7, snn::WeightSpec::uniform(9.0, 14.0), rng);
  net.connect_random(a, b, 0.5, snn::WeightSpec::uniform(8.0, 12.0), rng,
                     /*delay=*/2);
  net.connect_random(b, a, 0.4, snn::WeightSpec::uniform(-4.0, -2.0), rng,
                     /*delay=*/3);
  return net;
}

/// in + a on crossbar 0, b on crossbar 1: the a<->b projections are cut.
core::Partition two_block_partition(const snn::Network& net) {
  core::Partition partition(net.neuron_count(), 2);
  for (snn::NeuronId i = 0; i < net.neuron_count(); ++i) {
    partition.assign(i, i < 24 ? 0 : 1);
  }
  return partition;
}

CoSimConfig base_config(double duration_ms = 200.0,
                        std::uint32_t cpt = 4096) {
  CoSimConfig config;
  config.snn.duration_ms = duration_ms;
  config.snn.seed = 9;
  config.cycles_per_timestep = cpt;
  return config;
}

CoSimResult run_two_block(const CoSimConfig& config) {
  snn::Network net = two_block_network();
  const auto partition = two_block_partition(net);
  noc::Topology topology = noc::Topology::ring(2);
  const auto placement = core::identity_placement(2, topology);
  CoSimulator sim(net, partition, placement, std::move(topology), config);
  return sim.run();
}

TEST(CoSimConfig, RejectsZeroCyclesPerTimestep) {
  snn::Network net = two_block_network();
  const auto partition = two_block_partition(net);
  noc::Topology topology = noc::Topology::ring(2);
  const auto placement = core::identity_placement(2, topology);
  auto config = base_config();
  config.cycles_per_timestep = 0;
  EXPECT_THROW(
      CoSimulator(net, partition, placement, std::move(topology), config),
      std::invalid_argument);
}

TEST(CoSimConfig, RejectsZeroReceiveQueueDepth) {
  snn::Network net = two_block_network();
  const auto partition = two_block_partition(net);
  noc::Topology topology = noc::Topology::ring(2);
  const auto placement = core::identity_placement(2, topology);
  auto config = base_config();
  config.receive_queue_depth = 0;
  EXPECT_THROW(
      CoSimulator(net, partition, placement, std::move(topology), config),
      std::invalid_argument);
}

TEST(CoSimConfig, RejectsJitterAtOrBeyondWindow) {
  snn::Network net = two_block_network();
  const auto partition = two_block_partition(net);
  const auto placement =
      core::identity_placement(2, noc::Topology::ring(2));
  auto config = base_config();
  config.cycles_per_timestep = 100;
  config.injection_jitter_cycles = 100;
  EXPECT_THROW(
      CoSimulator(net, partition, placement, noc::Topology::ring(2), config),
      std::invalid_argument);
}

TEST(CoSimConfig, RejectsNanAndNegativeDurations) {
  snn::Network net = two_block_network();
  const auto partition = two_block_partition(net);
  const auto placement =
      core::identity_placement(2, noc::Topology::ring(2));
  for (const double bad : {std::numeric_limits<double>::quiet_NaN(), -1.0,
                           std::numeric_limits<double>::infinity()}) {
    auto config = base_config();
    config.snn.duration_ms = bad;
    EXPECT_THROW(CoSimulator(net, partition, placement,
                             noc::Topology::ring(2), config),
                 std::invalid_argument)
        << bad;
  }
  auto config = base_config();
  config.snn.dt_ms = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(CoSimulator(net, partition, placement, noc::Topology::ring(2),
                           config),
               std::invalid_argument);
}

TEST(CoSimConfig, RejectsDegenerateNocConfigs) {
  snn::Network net = two_block_network();
  const auto partition = two_block_partition(net);
  const auto placement =
      core::identity_placement(2, noc::Topology::ring(2));
  auto config = base_config();
  config.noc.buffer_depth = 0;
  EXPECT_THROW(CoSimulator(net, partition, placement, noc::Topology::ring(2),
                           config),
               std::invalid_argument);
  config = base_config();
  config.noc.max_cycles = 0;
  EXPECT_THROW(CoSimulator(net, partition, placement, noc::Topology::ring(2),
                           config),
               std::invalid_argument);
}

TEST(CoSimConfig, RejectsBrokenMappings) {
  snn::Network net = two_block_network();
  noc::Topology topology = noc::Topology::ring(2);
  const auto placement = core::identity_placement(2, topology);
  const auto config = base_config();

  // Incomplete partition.
  core::Partition incomplete(net.neuron_count(), 2);
  EXPECT_THROW(CoSimulator(net, incomplete, placement, noc::Topology::ring(2),
                           config),
               std::invalid_argument);
  // Wrong neuron count.
  core::Partition wrong_size(net.neuron_count() + 1, 2);
  for (snn::NeuronId i = 0; i <= net.neuron_count(); ++i) {
    wrong_size.assign(i, 0);
  }
  EXPECT_THROW(CoSimulator(net, wrong_size, placement, noc::Topology::ring(2),
                           config),
               std::invalid_argument);
  const auto partition = two_block_partition(net);
  // Placement size mismatch.
  EXPECT_THROW(CoSimulator(net, partition, core::Placement{0},
                           noc::Topology::ring(2), config),
               std::invalid_argument);
  // Out-of-range tile.
  EXPECT_THROW(CoSimulator(net, partition, core::Placement{0, 7},
                           noc::Topology::ring(2), config),
               std::invalid_argument);
  // Duplicate tiles.
  EXPECT_THROW(CoSimulator(net, partition, core::Placement{1, 1},
                           noc::Topology::ring(2), config),
               std::invalid_argument);
}

TEST(CoSimConfig, RejectsCutPlasticSynapsesOnlyWhileStdpIsLive) {
  snn::Network net = two_block_network();
  // Make one cross-block synapse plastic: a (12..23) -> b (24..35).
  for (auto& s : net.mutable_synapses()) {
    if (s.pre >= 12 && s.pre < 24 && s.post >= 24) {
      s.plastic = true;
      break;
    }
  }
  const auto partition = two_block_partition(net);
  const auto placement =
      core::identity_placement(2, noc::Topology::ring(2));
  auto config = base_config();
  config.snn.enable_stdp = true;
  EXPECT_THROW(CoSimulator(net, partition, placement, noc::Topology::ring(2),
                           config),
               std::invalid_argument);
  // With STDP off the plastic flag is inert and the cut is legal.
  snn::Network frozen = net;
  EXPECT_NO_THROW(CoSimulator(frozen, partition, placement,
                              noc::Topology::ring(2), base_config()));
}

TEST(CoSimulator, IdealBudgetMatchesStandaloneBitForBit) {
  const auto config = base_config();
  const auto result = run_two_block(config);

  snn::Network reference = two_block_network();
  const auto ideal = snn::Simulator(reference, config.snn).run();

  EXPECT_GT(result.fidelity.packets_offered, 0u);
  EXPECT_EQ(result.fidelity.deadline_misses, 0u);
  EXPECT_EQ(result.fidelity.receive_drops, 0u);
  EXPECT_EQ(result.fidelity.undelivered, 0u);
  EXPECT_EQ(result.snn.total_spikes, ideal.total_spikes);
  EXPECT_EQ(result.snn.spikes, ideal.spikes);
  EXPECT_TRUE(
      spike_divergence(ideal.spikes, result.snn.spikes).identical());
}

TEST(CoSimulator, FidelityAccountingIsConsistent) {
  const auto result = run_two_block(base_config());
  const auto& f = result.fidelity;
  EXPECT_EQ(f.copies_offered,
            f.copies_accepted + f.receive_drops + f.undelivered);
  EXPECT_EQ(f.copies_arrived, f.copies_accepted + f.receive_drops);
  EXPECT_EQ(f.steps, 200u);
  EXPECT_EQ(f.per_step_transit.size(), f.steps);
  EXPECT_EQ(f.per_step_misses.size(), f.steps);
  EXPECT_EQ(f.transit_cycles.count(), f.copies_arrived);
  EXPECT_EQ(result.noc.copies_delivered, f.copies_arrived);
}

TEST(CoSimulator, ShrinkingBudgetDegradesFidelity) {
  const auto ideal = run_two_block(base_config());
  const auto congested = run_two_block(base_config(200.0, /*cpt=*/2));

  EXPECT_EQ(ideal.fidelity.deadline_misses, 0u);
  EXPECT_GT(congested.fidelity.deadline_misses +
                congested.fidelity.undelivered,
            0u);

  snn::Network reference = two_block_network();
  const auto baseline =
      snn::Simulator(reference, base_config().snn).run();
  const auto divergence =
      spike_divergence(baseline.spikes, congested.snn.spikes);
  EXPECT_FALSE(divergence.identical());
  EXPECT_GT(divergence.fraction(), 0.0);
}

TEST(CoSimulator, BoundedReceiveQueueDropsCopies) {
  auto config = base_config(200.0, /*cpt=*/2);
  config.receive_queue_depth = 1;
  const auto result = run_two_block(config);
  EXPECT_GT(result.fidelity.receive_drops, 0u);
  EXPECT_EQ(result.fidelity.copies_offered,
            result.fidelity.copies_accepted + result.fidelity.receive_drops +
                result.fidelity.undelivered);
}

TEST(CoSimulator, LockstepTimelineOutrunsAOneShotMaxCyclesBound) {
  // max_cycles is a drain bound for one-shot traces; a healthy lockstep
  // run whose virtual timeline exceeds it must not halt mid-flight (the
  // CoSimulator raises the bound to cover steps x cycles_per_timestep).
  auto config = base_config(200.0, /*cpt=*/4096);
  config.noc.max_cycles = 10;  // << 200 * 4096 virtual cycles
  const auto result = run_two_block(config);
  EXPECT_GT(result.fidelity.copies_accepted, 0u);
  EXPECT_EQ(result.fidelity.undelivered, 0u);
  EXPECT_EQ(result.fidelity.deadline_misses, 0u);
}

TEST(CoSimulator, RunIsOneShot) {
  snn::Network net = two_block_network();
  const auto partition = two_block_partition(net);
  noc::Topology topology = noc::Topology::ring(2);
  const auto placement = core::identity_placement(2, topology);
  CoSimulator sim(net, partition, placement, std::move(topology),
                  base_config(50.0));
  sim.run();
  EXPECT_THROW(sim.run(), std::logic_error);
}

TEST(CoSimulator, PurelyLocalMappingShipsNothing) {
  snn::Network net = two_block_network();
  core::Partition partition(net.neuron_count(), 1);
  for (snn::NeuronId i = 0; i < net.neuron_count(); ++i) {
    partition.assign(i, 0);
  }
  noc::Topology topology = noc::Topology::ring(2);
  CoSimulator sim(net, partition, core::Placement{0}, std::move(topology),
                  base_config());
  const auto result = sim.run();
  EXPECT_EQ(result.fidelity.packets_offered, 0u);

  snn::Network reference = two_block_network();
  const auto ideal = snn::Simulator(reference, base_config().snn).run();
  EXPECT_EQ(result.snn.spikes, ideal.spikes);
}

TEST(SpikeDivergence, CountsAndFraction) {
  const std::vector<snn::SpikeTrain> a = {{1.0, 2.0, 3.0}, {}, {5.0}};
  const std::vector<snn::SpikeTrain> b = {{1.0, 2.5, 3.0}, {4.0}, {5.0}};
  const auto d = spike_divergence(a, b);
  EXPECT_EQ(d.matched, 3u);
  EXPECT_EQ(d.only_ideal, 1u);
  EXPECT_EQ(d.only_cosim, 2u);
  EXPECT_DOUBLE_EQ(d.fraction(), 3.0 / 6.0);
  EXPECT_FALSE(d.identical());
  EXPECT_THROW(spike_divergence(a, {{1.0}}), std::invalid_argument);
}

// --- the snn::Simulator deferred seam itself ----------------------------

TEST(DeferredSeam, AllDeliverVerdictsMatchInlineStepBitForBit) {
  // Even with cut synapses marked, a flush where every packet "arrived
  // in-window" must reproduce the inline engine exactly.
  snn::Network inline_net = two_block_network();
  snn::SimulationConfig config;
  config.duration_ms = 150.0;
  config.seed = 4;
  snn::Simulator inline_sim(inline_net, config);
  const auto inline_result = inline_sim.run();

  snn::Network deferred_net = two_block_network();
  snn::Simulator deferred(deferred_net, config);
  std::vector<std::uint8_t> cut(deferred_net.synapses().size(), 0);
  const auto& synapses = deferred_net.synapses();
  for (std::size_t s = 0; s < synapses.size(); ++s) {
    cut[s] = (synapses[s].pre < 24) != (synapses[s].post < 24) ? 1 : 0;
  }
  deferred.cut_remote_synapses(cut);
  for (int step = 0; step < 150; ++step) {
    deferred.step_deferred();
    const std::vector<snn::Simulator::RemoteVerdict> verdicts(
        deferred.deferred_remote_records(),
        snn::Simulator::RemoteVerdict::kDeliver);
    deferred.flush_deferred(verdicts);
  }
  EXPECT_EQ(deferred.result().spikes, inline_result.spikes);
  EXPECT_EQ(deferred.total_spikes(), inline_result.total_spikes);
}

TEST(DeferredSeam, WithholdSuppressesExactlyTheCutDeliveries) {
  // Withholding every cut record must equal simulating a network where the
  // cut synapses have zero weight.
  snn::Network zeroed = two_block_network();
  for (auto& s : zeroed.mutable_synapses()) {
    if ((s.pre < 24) != (s.post < 24)) s.weight = 0.0F;
  }
  snn::SimulationConfig config;
  config.duration_ms = 150.0;
  config.seed = 4;
  snn::Simulator zero_sim(zeroed, config);
  const auto zero_result = zero_sim.run();

  snn::Network net = two_block_network();
  snn::Simulator deferred(net, config);
  std::vector<std::uint8_t> cut(net.synapses().size(), 0);
  const auto& synapses = net.synapses();
  for (std::size_t s = 0; s < synapses.size(); ++s) {
    cut[s] = (synapses[s].pre < 24) != (synapses[s].post < 24) ? 1 : 0;
  }
  deferred.cut_remote_synapses(cut);
  for (int step = 0; step < 150; ++step) {
    deferred.step_deferred();
    const std::vector<snn::Simulator::RemoteVerdict> verdicts(
        deferred.deferred_remote_records(),
        snn::Simulator::RemoteVerdict::kWithhold);
    deferred.flush_deferred(verdicts);
  }
  EXPECT_EQ(deferred.result().spikes, zero_result.spikes);
}

TEST(DeferredSeam, InjectRemoteFiresAQuietNeuron) {
  // One silent LIF neuron; a strong injected arrival must fire it exactly
  // `delay` steps after the open step.
  snn::Network net;
  net.add_lif_group("only", 1);
  net.add_synapse(0, 0, 0.0, /*delay=*/4);  // sizes the delay ring
  snn::SimulationConfig config;
  config.duration_ms = 10.0;
  snn::Simulator sim(net, config);

  sim.step_deferred();  // step 0 open
  sim.inject_remote(0, 60.0, 3);
  sim.flush_deferred({});
  for (int step = 1; step < 10; ++step) {
    sim.step_deferred();
    sim.flush_deferred({});
  }
  const auto spikes = sim.spikes();
  ASSERT_EQ(spikes[0].size(), 1u);
  // Arrival at step 0 + 3 fires during that step; the spike is stamped
  // with the step's start time.
  EXPECT_DOUBLE_EQ(spikes[0][0], 3.0);
}

TEST(DeferredSeam, GuardsMisuse) {
  snn::Network net = two_block_network();
  snn::SimulationConfig config;
  snn::Simulator sim(net, config);
  // Flush without an open step.
  EXPECT_THROW(sim.flush_deferred({}), std::logic_error);
  // inject_remote outside an open step.
  EXPECT_THROW(sim.inject_remote(0, 1.0, 1), std::logic_error);
  // Wrong mask size.
  EXPECT_THROW(sim.cut_remote_synapses({1, 0}), std::invalid_argument);

  sim.step_deferred();
  // step()/step_deferred() while a step is open.
  EXPECT_THROW(sim.step(), std::logic_error);
  EXPECT_THROW(sim.step_deferred(), std::logic_error);
  // Bad inject delays.
  EXPECT_THROW(sim.inject_remote(0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(sim.inject_remote(0, 1.0, 200), std::invalid_argument);
  EXPECT_THROW(sim.inject_remote(net.neuron_count(), 1.0, 1),
               std::out_of_range);
  // Verdict count mismatch (records pending but none supplied... or the
  // inverse: supply one too many).
  std::vector<snn::Simulator::RemoteVerdict> extra(
      sim.deferred_remote_records() + 1,
      snn::Simulator::RemoteVerdict::kDeliver);
  EXPECT_THROW(sim.flush_deferred(extra), std::invalid_argument);
  // Cutting with a deferred step open is rejected (the pending verdict
  // stream was enumerated under the old mask)...
  EXPECT_THROW(
      sim.cut_remote_synapses(
          std::vector<std::uint8_t>(net.synapses().size(), 0)),
      std::logic_error);
  // ...but re-cutting between closed steps is legal (the remap-on-failure
  // path re-cuts mid-run after an evacuation).
  sim.flush_deferred(std::vector<snn::Simulator::RemoteVerdict>(
      sim.deferred_remote_records(), snn::Simulator::RemoteVerdict::kDeliver));
  EXPECT_NO_THROW(sim.cut_remote_synapses(
      std::vector<std::uint8_t>(net.synapses().size(), 0)));
}

}  // namespace
}  // namespace snnmap::cosim
