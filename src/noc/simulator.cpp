#include "noc/simulator.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "util/log.hpp"

namespace snnmap::noc {
namespace {

/// Source-neuron ids below this use the flat sequence-counter array (grown
/// lazily to the largest id seen); larger ids fall back to the hash map.
constexpr std::uint32_t kDenseSequenceLimit = 1u << 20;

}  // namespace

const char* to_string(SelectionStrategy selection) noexcept {
  switch (selection) {
    case SelectionStrategy::kFirstCandidate: return "first-candidate";
    case SelectionStrategy::kBufferLevel: return "buffer-level";
  }
  return "?";
}

const char* to_string(NocEngine engine) noexcept {
  switch (engine) {
    case NocEngine::kCycle: return "cycle";
    case NocEngine::kEvent: return "event";
  }
  return "?";
}

NocEngine noc_engine_from_string(const std::string& name) {
  if (name == "cycle") return NocEngine::kCycle;
  if (name == "event") return NocEngine::kEvent;
  throw std::invalid_argument("NocEngine: unknown engine \"" + name +
                              "\" (expected \"cycle\" or \"event\")");
}

NocSimulator::NocSimulator(Topology topology, NocConfig config)
    : topology_(std::move(topology)), config_(config) {
  if (config_.buffer_depth == 0) {
    throw std::invalid_argument(
        "NocSimulator: buffer_depth must be >= 1 (a zero-depth FIFO could "
        "never accept a flit, so no packet would ever move)");
  }
  if (config_.max_cycles == 0) {
    throw std::invalid_argument(
        "NocSimulator: max_cycles must be >= 1 (a zero-cycle budget could "
        "never simulate any traffic)");
  }
  config_.energy.validate();  // NaN/inf/negative pJ would poison every stat
  config_.faults.validate();  // degenerate rates / missing horizon throw here
  config_.trace.validate();   // enabled zero-capacity ring throws here
  config_.monitor.validate();  // NaN alpha / negative threshold throw here
  event_driven_ = config_.engine == NocEngine::kEvent;
  // Flat per-port geometry: for global port index port_base_[r] + o,
  // neighbor_ holds the adjacent router and reverse_port_ the input-port
  // index at that neighbor through which flits sent from r arrive.
  const std::uint32_t n = topology_.router_count();
  for (RouterId r = 0; r < n; ++r) {
    // The packed route entries encode ports as uint8 (and the per-router
    // occupancy bitmask needs port_count + 1 <= 64); such fabrics are far
    // beyond anything the cycle loop is meant for.
    if (topology_.port_count(r) >= 64) {
      throw std::invalid_argument(
          "NocSimulator: router with >= 64 ports (occupancy bitmask and "
          "packed route entries cannot represent it)");
    }
  }
  port_base_.resize(n + 1);
  port_base_[0] = 0;
  for (RouterId r = 0; r < n; ++r) {
    port_base_[r + 1] = port_base_[r] + topology_.port_count(r);
  }
  neighbor_.resize(port_base_[n]);
  reverse_port_.resize(port_base_[n]);
  for (RouterId r = 0; r < n; ++r) {
    const std::uint32_t ports = topology_.port_count(r);
    for (PortId o = 0; o < ports; ++o) {
      const RouterId nb = topology_.neighbor(r, o);
      std::uint32_t back = static_cast<std::uint32_t>(-1);
      for (PortId p = 0; p < topology_.port_count(nb); ++p) {
        if (topology_.neighbor(nb, p) == r) {
          back = p;
          break;
        }
      }
      if (back == static_cast<std::uint32_t>(-1)) {
        throw std::logic_error("NocSimulator: asymmetric topology link");
      }
      neighbor_[port_base_[r] + o] = nb;
      reverse_port_[port_base_[r] + o] = back;
    }
  }
  offchip_port_.assign(port_base_[n], 0);
  for (RouterId r = 0; r < n; ++r) {
    for (PortId o = 0; o < topology_.port_count(r); ++o) {
      offchip_port_[port_base_[r] + o] =
          topology_.link_is_offchip(r, o) ? 1 : 0;
    }
  }
  tile_router_.resize(topology_.tile_count());
  for (TileId t = 0; t < topology_.tile_count(); ++t) {
    tile_router_[t] = topology_.router_of_tile(t);
  }
  // Observability instruments are registered once; begin() only zeroes
  // their values.  Names follow the dotted-lowercase convention (README
  // "Observability").
  mid_.packets = metrics_.counter("noc.packets_injected");
  mid_.flits = metrics_.counter("noc.flits_injected");
  mid_.delivered = metrics_.counter("noc.copies_delivered");
  mid_.link_hops = metrics_.counter("noc.link_hops");
  mid_.offchip = metrics_.counter("noc.offchip_link_hops");
  mid_.router_traversals = metrics_.counter("noc.router_traversals");
  mid_.busy = metrics_.counter("noc.busy_cycles");
  mid_.reroutes = metrics_.counter("noc.fault.reroutes");
  mid_.flits_dropped = metrics_.counter("noc.fault.flits_dropped");
  mid_.copies_lost = metrics_.counter("noc.fault.copies_lost");
  mid_.link_max_flits = metrics_.gauge("noc.link.max_flits");
  mid_.links_used = metrics_.gauge("noc.link.used");
  mid_.windows = metrics_.gauge("noc.windows");
  mid_.trace_recorded = metrics_.gauge("noc.trace.recorded");
  mid_.trace_evicted = metrics_.gauge("noc.trace.evicted");
  mid_.window_peak = metrics_.histogram(
      "noc.window.peak_link_flits",
      {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384});
  mid_.window_utilization = metrics_.histogram(
      "noc.window.utilization_pct", {10, 20, 30, 40, 50, 60, 70, 80, 90});
  begin();
}

void NocSimulator::begin() {
  const std::uint32_t n = topology_.router_count();
  routers_.clear();
  routers_.reserve(n);
  for (RouterId r = 0; r < n; ++r) {
    routers_.emplace_back(r, topology_.port_count(r), config_.buffer_depth);
  }
  traffic_.clear();
  next_event_ = 0;
  seq_flat_.clear();
  seq_map_.clear();
  arena_.clear();
  arena_live_ = 0;
  active_.assign((n + 63) / 64, 0);
  staged_.clear();
  staged_count_.assign(port_base_[n], 0);
  staged_touched_.clear();
  link_flits_.assign(port_base_[n], 0);
  now_ = 0;
  in_flight_ = 0;
  halted_ = false;
  wake_.clear();
  stats_ = NocStats{};
  delivered_.clear();
  busy_cycles_ = 0;
  window_report_ = WindowEnergyReport{};
  win_start_cycle_ = 0;
  win_busy_ = 0;
  win_flits_injected_ = 0;
  win_copies_delivered_ = 0;
  win_link_hops_ = 0;
  win_offchip_link_hops_ = 0;
  win_router_traversals_ = 0;
  win_link_flits_.assign(port_base_[n], 0);
  // Rebuild the fault timeline from scratch: the schedule is a pure
  // function of (topology, config.faults), so every session replays the
  // identical fault sequence.  Default config -> inert model, and no fault
  // branch below is ever taken.
  if (config_.faults.any()) {
    fault_model_ = FaultModel(topology_, config_.faults);
    faults_active_ = fault_model_.active();
  } else {
    faults_active_ = false;
  }
  dead_tiles_pending_.clear();
  // Observability session reset.  The tracer restarts its stream and
  // digest; the fault *schedule* is recorded up front because it is a pure
  // function of (topology, config.faults) — whereas the cycle an idle
  // fabric applies a transition batch at varies with session chunking.
  tracer_.configure(config_.trace);
  trace_active_ = tracer_.enabled();
  if (trace_active_ && faults_active_) trace_fault_schedule();
  metrics_.reset_values();
  if (config_.monitor.enabled) {
    monitor_.emplace(port_base_[n], config_.monitor);
    monitor_scratch_.assign(port_base_[n], 0);
  } else {
    monitor_.reset();
  }
}

RouterId NocSimulator::router_of_port(std::uint32_t g) const {
  const auto it =
      std::upper_bound(port_base_.begin(), port_base_.end(), g);
  return static_cast<RouterId>(it - port_base_.begin() - 1);
}

// snnmap-lint: allow(hoisted-gate) -- whole function is invoked from
// begin() under `trace_active_ && faults_active_` only.
void NocSimulator::trace_fault_schedule() {
  using Change = FaultModel::Change;
  using Type = obs::TraceEventType;
  fault_model_.for_each_event([&](std::uint64_t cycle, Change change,
                                  std::uint32_t a, std::uint32_t b) {
    (void)b;  // the reverse direction of a bidirectional link
    switch (change) {
      case Change::kLinkDown:
      case Change::kLinkUp: {
        const RouterId r = router_of_port(a);
        tracer_.record(cycle,
                       change == Change::kLinkDown ? Type::kFaultLinkDown
                                                   : Type::kFaultLinkUp,
                       r, a - port_base_[r], 0);
        break;
      }
      case Change::kRouterDown:
      case Change::kRouterUp:
        tracer_.record(cycle,
                       change == Change::kRouterDown ? Type::kFaultRouterDown
                                                     : Type::kFaultRouterUp,
                       a, 0, 0);
        break;
      case Change::kTileDown:
      case Change::kTileUp:
        tracer_.record(cycle,
                       change == Change::kTileDown ? Type::kFaultTileDown
                                                   : Type::kFaultTileUp,
                       a, 0, 0);
        break;
    }
  });
}

std::vector<TileId> NocSimulator::take_dead_tiles() {
  std::vector<TileId> out;
  out.swap(dead_tiles_pending_);
  return out;
}

std::uint32_t NocSimulator::first_live_port(RouterId r, RouterId dst) const {
  const Topology::RouteEntry e = topology_.route_entry(r, dst);
  const std::uint32_t base = port_base_[r];
  for (std::uint32_t c = 0; c < e.count; ++c) {
    if (port_live(base + e.port[c])) return e.port[c];
  }
  PortId fallback[2];
  const std::uint32_t n = topology_.fault_fallback_candidates(r, dst,
                                                              fallback);
  for (std::uint32_t c = 0; c < n; ++c) {
    if (port_live(base + fallback[c])) return fallback[c];
  }
  return kUnroutable;
}

void NocSimulator::purge_router(RouterId r) {
  Router& router = routers_[r];
  if (router.buffered_flits() != 0) {
    std::size_t killed_flits = 0;
    std::uint64_t killed_copies = 0;
    router.for_each_flit([&](Flit& f) {
      ++killed_flits;
      killed_copies += f.dest_count;
    });
    stats_.fault.copies_killed += killed_copies;
    arena_live_ -= killed_copies;
    in_flight_ -= killed_flits;
    router.clear_queues();
  }
  active_[r >> 6] &= ~(1ULL << (r & 63));
}

// snnmap-lint: allow(hoisted-gate) -- invoked from the cycle loop under
// `faults_active_` only (mask transitions cannot happen while inert).
void NocSimulator::sweep_unroutable() {
  // Re-prune every buffered flit against the new masks: destinations that
  // died (tile or its router) or lost their last live candidate port from
  // the flit's *current* router are abandoned here, so no flit can sit in
  // a FIFO forever waiting for an output that will never be legal again.
  const std::uint32_t n = topology_.router_count();
  for (RouterId r = 0; r < n; ++r) {
    Router& router = routers_[r];
    if (router.buffered_flits() == 0) continue;
    router.for_each_flit([&](Flit& f) {
      if (f.dest_count == 0) return;
      TileId* dests = arena_.data() + f.dest_begin;
      std::uint32_t kept = 0;
      for (std::uint32_t d = 0; d < f.dest_count; ++d) {
        const TileId dest = dests[d];
        const RouterId dst_router = tile_router_[dest];
        const bool alive =
            fault_model_.tile_live(dest) &&
            fault_model_.router_live(dst_router) &&
            (dst_router == r ||
             first_live_port(r, dst_router) != kUnroutable);
        if (alive) {
          dests[kept++] = dest;
        } else {
          ++stats_.fault.copies_unroutable;
          --arena_live_;
        }
      }
      f.dest_count = kept;
    });
  }
}

// snnmap-lint: allow(hoisted-gate) -- invoked from the cycle loop and
// idle fast-forward under `faults_active_` only.
void NocSimulator::apply_fault_transitions() {
  if (fault_model_.next_transition_cycle() > now_) return;
  FaultTransitions tr;
  fault_model_.advance_to(now_, tr);
  stats_.fault.link_faults += tr.link_downs;
  stats_.fault.router_faults += tr.router_downs;
  stats_.fault.tile_faults += tr.tile_downs;
  stats_.fault.links_restored += tr.link_ups;
  for (const RouterId r : tr.died_routers) purge_router(r);
  dead_tiles_pending_.insert(dead_tiles_pending_.end(),
                             tr.died_tiles.begin(), tr.died_tiles.end());
  if (tr.changed) sweep_unroutable();
}

void NocSimulator::enqueue(std::vector<SpikePacketEvent> traffic) {
  std::size_t new_dests = 0;
  for (const auto& ev : traffic) new_dests += ev.dest_tiles.size();
  // Injected events are dead history (make_flit copied their dests into
  // the arena); reclaim the prefix once it dominates the queue so a long
  // windowed session holds O(one window) of traffic, not the whole run's.
  if (next_event_ >= 64 && next_event_ * 2 >= traffic_.size()) {
    traffic_.erase(traffic_.begin(),
                   traffic_.begin() + static_cast<std::ptrdiff_t>(next_event_));
    next_event_ = 0;
  }
  if (traffic_.empty()) {
    traffic_ = std::move(traffic);
  } else {
    traffic_.insert(traffic_.end(),
                    std::make_move_iterator(traffic.begin()),
                    std::make_move_iterator(traffic.end()));
  }
  // Events with identical keys keep introsort's (deterministic) tie
  // permutation: sequence numbers are assigned in this order, so the golden
  // streams pin it.  Do not replace with a keyed/stable sort.
  std::sort(traffic_.begin() + static_cast<std::ptrdiff_t>(next_event_),
            traffic_.end(),
            [](const SpikePacketEvent& a, const SpikePacketEvent& b) {
              if (a.emit_cycle != b.emit_cycle)
                return a.emit_cycle < b.emit_cycle;
              if (a.source_tile != b.source_tile)
                return a.source_tile < b.source_tile;
              return a.source_neuron < b.source_neuron;
            });
  arena_.reserve(arena_.size() + new_dests * 2);
  if (config_.collect_delivered) {
    // Exactly one delivered copy per (event, destination) on a drained run.
    delivered_.reserve(delivered_.size() + new_dests);
  }
}

std::uint32_t& NocSimulator::sequence_of(std::uint32_t neuron) {
  if (neuron < kDenseSequenceLimit) {
    if (neuron >= seq_flat_.size()) {
      seq_flat_.resize(std::max<std::size_t>(neuron + 1,
                                             seq_flat_.size() * 2),
                       0);
    }
    return seq_flat_[neuron];
  }
  return seq_map_[neuron];
}

Flit NocSimulator::make_flit(const SpikePacketEvent& ev, const TileId* dests,
                             std::uint32_t count) {
  Flit f;
  f.source_neuron = ev.source_neuron;
  f.source_tile = ev.source_tile;
  f.emit_cycle = ev.emit_cycle;
  f.emit_step = ev.emit_step;
  f.sequence = sequence_of(ev.source_neuron);
  f.dest_begin = static_cast<std::uint32_t>(arena_.size());
  f.dest_count = count;
  arena_.insert(arena_.end(), dests, dests + count);
  arena_live_ += count;
  f.payload = aer_encode({ev.source_neuron & kAerMaxNeuron,
                          ev.source_tile & kAerMaxCrossbar,
                          aer_timestamp(ev.emit_cycle)});
  return f;
}

void NocSimulator::inject_due() {
  const auto mark_active = [&](RouterId r) {
    active_[r >> 6] |= 1ULL << (r & 63);
  };
  while (next_event_ < traffic_.size() &&
         traffic_[next_event_].emit_cycle <= now_) {
    const SpikePacketEvent& ev = traffic_[next_event_];
    if (ev.dest_tiles.empty()) {
      throw std::invalid_argument(
          "NocSimulator: packet event with no destinations");
    }
    if (ev.source_tile >= tile_router_.size()) {
      throw std::out_of_range("Topology: tile id out of range");
    }
    for (const TileId dest : ev.dest_tiles) {
      if (dest >= tile_router_.size()) {
        throw std::out_of_range("Topology: tile id out of range");
      }
    }
    const RouterId src_router = tile_router_[ev.source_tile];
    const TileId* dests = ev.dest_tiles.data();
    auto dest_count = static_cast<std::uint32_t>(ev.dest_tiles.size());
    if (faults_active_) {
      // A dead source tile (or its router) never transmits: the spike is
      // blocked at the encoder, not lost in the fabric.
      if (!fault_model_.tile_live(ev.source_tile) ||
          !fault_model_.router_live(src_router)) {
        stats_.fault.copies_blocked_at_source += dest_count;
        ++stats_.fault.packets_blocked;
        ++next_event_;
        continue;
      }
      // Destinations that are already dead or unreachable are pruned at
      // the encoder so their copies never occupy fabric buffers.
      live_dests_.clear();
      for (std::uint32_t d = 0; d < dest_count; ++d) {
        const RouterId dst_router = tile_router_[dests[d]];
        const bool alive =
            fault_model_.tile_live(dests[d]) &&
            fault_model_.router_live(dst_router) &&
            (dst_router == src_router ||
             first_live_port(src_router, dst_router) != kUnroutable);
        if (alive) {
          live_dests_.push_back(dests[d]);
        } else {
          ++stats_.fault.copies_unroutable;
        }
      }
      if (live_dests_.empty()) {
        ++stats_.fault.packets_blocked;
        ++next_event_;
        continue;
      }
      dests = live_dests_.data();
      dest_count = static_cast<std::uint32_t>(live_dests_.size());
    }
    Router& src = routers_[src_router];
    ++stats_.packets_injected;
    if (config_.multicast) {
      src.push(src.port_count(), make_flit(ev, dests, dest_count));
      ++stats_.flits_injected;  // one AER encode per flit copy
      ++in_flight_;
      if (trace_active_) {
        tracer_.record(now_, obs::TraceEventType::kFlitInject, src_router,
                       dest_count, ev.source_neuron);
      }
    } else {
      // Source-replicated unicast: one independent copy per destination.
      for (std::uint32_t d = 0; d < dest_count; ++d) {
        src.push(src.port_count(), make_flit(ev, &dests[d], 1));
        ++stats_.flits_injected;
        ++in_flight_;
        if (trace_active_) {
          tracer_.record(now_, obs::TraceEventType::kFlitInject, src_router,
                         1, ev.source_neuron);
        }
      }
    }
    ++sequence_of(ev.source_neuron);
    mark_active(src_router);
    ++next_event_;
  }
}

void NocSimulator::maybe_compact_arena() {
  // Compact the destination arena once dead ranges dominate it.
  if (arena_.size() > 4096 && arena_.size() > 4 * (arena_live_ + 1)) {
    std::vector<TileId> compacted;
    compacted.reserve(arena_live_);
    for (Router& router : routers_) {
      router.for_each_flit([&](Flit& f) {
        const auto begin = static_cast<std::uint32_t>(compacted.size());
        compacted.insert(compacted.end(), arena_.begin() + f.dest_begin,
                         arena_.begin() + f.dest_begin + f.dest_count);
        f.dest_begin = begin;
      });
    }
    arena_ = std::move(compacted);
  }
}

void NocSimulator::simulate_cycle() {
  const std::uint64_t now = now_;

  // ---- Arbitration: each output port of each router moves <= 1 flit.
  staged_.clear();
  for (const std::uint32_t idx : staged_touched_) staged_count_[idx] = 0;
  staged_touched_.clear();

  for (std::size_t w = 0; w < active_.size(); ++w) {
    std::uint64_t bits = active_[w];
    while (bits != 0) {
      const auto r = static_cast<RouterId>((w << 6) +
                                           std::countr_zero(bits));
      bits &= bits - 1;
      Router& router = routers_[r];
      const std::uint32_t ports = router.port_count();
      const std::uint32_t base = port_base_[r];

      for (std::uint32_t out = 0; out <= ports; ++out) {
        const bool local = out == ports;
        RouterId nb = 0;
        std::uint32_t nb_port = 0;
        std::uint32_t nb_slot = 0;
        bool offchip = false;
        if (!local) {
          nb = neighbor_[base + out];
          nb_port = reverse_port_[base + out];
          nb_slot = port_base_[nb] + nb_port;
          offchip = offchip_port_[base + out] != 0;
          // Backpressure is per output this cycle; check it once instead
          // of per input.
          if (!routers_[nb].can_accept(nb_port, staged_count_[nb_slot])) {
            continue;
          }
        }
        // Round-robin over the non-empty input queues for this output:
        // rotating the occupancy mask by the round-robin pointer makes
        // ascending bit positions enumerate inputs in (start + k) %
        // inputs order (inputs <= 64 and all mask bits sit below
        // `inputs`, so the wrap around bit 63 is exactly the wrap around
        // `inputs`).
        const std::uint32_t start = router.rr_pointer(out);
        std::uint64_t pending = std::rotr(router.occupied_mask(), start);
        while (pending != 0) {
          const std::uint32_t in =
              (start + static_cast<std::uint32_t>(
                           std::countr_zero(pending))) & 63U;
          pending &= pending - 1;
          Flit& head = router.head(in);
          if (head.dest_count == 0) continue;  // fully served, pops below
          // Still on the wire: an off-chip crossing parks the flit in the
          // destination FIFO (it holds its buffer slot for backpressure)
          // until its extra serialization latency elapses.
          if (head.ready_cycle > now) continue;

          const auto deliver = [&](TileId dest) {
            DeliveredSpike d;
            d.source_neuron = head.source_neuron;
            d.source_tile = head.source_tile;
            d.dest_tile = dest;
            d.emit_cycle = head.emit_cycle;
            d.emit_step = head.emit_step;
            d.recv_cycle = now + 1;
            d.sequence = head.sequence;
            if (config_.collect_delivered) {
              delivered_.push_back(d);
            }
            ++stats_.copies_delivered;
            stats_.latency_cycles.add(static_cast<double>(d.latency()));
            stats_.max_latency_cycles =
                std::max(stats_.max_latency_cycles, d.latency());
            if (trace_active_) {
              tracer_.record(d.recv_cycle, obs::TraceEventType::kFlitDeliver,
                             r, dest, head.source_neuron);
            }
          };
          // Ejection and forwarding account pure activity; energy is
          // priced from these exact integer counters at window close /
          // finish (hw::EnergyModel::activity_energy_pj), so the totals
          // are independent of summation order and window boundaries.
          const auto charge_ejection = [&] {
            ++stats_.router_traversals;  // decode pairs with copies_delivered
          };
          // Stages `copy` through this output and charges the hop.  Under
          // a lossy wire (FaultConfig::flit_drop_probability) the copy may
          // vanish in transit: the wire energy is spent (link hop counted)
          // but nothing arrives — no staging, no switch traversal at the
          // far end.
          const auto forward = [&](Flit copy) {
            if (faults_active_ && fault_model_.drop_probability() > 0.0 &&
                fault_model_.draw_drop()) {
              ++stats_.link_hops;
              if (offchip) ++stats_.offchip_link_hops;
              ++link_flits_[base + out];
              ++stats_.fault.flits_dropped;
              stats_.fault.copies_dropped += copy.dest_count;
              arena_live_ -= copy.dest_count;
              if (trace_active_) {
                tracer_.record(now, obs::TraceEventType::kFlitDrop, r, out,
                               copy.source_neuron);
              }
              return;
            }
            copy.ready_cycle =
                now + 1 +
                (offchip ? std::uint64_t{config_.offchip_link_latency} : 0);
            if (trace_active_) {
              tracer_.record(now, obs::TraceEventType::kFlitHop, r, out,
                             copy.source_neuron);
              // Park condition is engine-independent (ready past the next
              // cycle), so the event records identically under kCycle.
              if (copy.ready_cycle > now + 1) {
                tracer_.record(now, obs::TraceEventType::kFlitPark, nb,
                               nb_port, copy.ready_cycle);
              }
            }
            // An off-chip crossing parks the copy past the next cycle; the
            // event engine must know when it un-parks, or a fabric whose
            // only pending work is on the SerDes would look like a dead
            // fixed point and skip past the wake-up.
            if (event_driven_ && copy.ready_cycle > now + 1) {
              wake_.schedule(copy.ready_cycle, now);
            }
            staged_.push_back({nb, nb_port, copy});
            if (staged_count_[nb_slot]++ == 0) {
              staged_touched_.push_back(nb_slot);
            }
            ++in_flight_;
            ++stats_.link_hops;
            if (offchip) ++stats_.offchip_link_hops;
            ++stats_.router_traversals;
            ++link_flits_[base + out];
          };

          if (head.dest_count == 1) {
            // Single-destination fast path: no subset to partition, and
            // the flit's arena range transfers to the forwarded copy
            // untouched.  Also the only case where the adaptive turn
            // models leave a choice to the selection strategy.
            const TileId dest = arena_[head.dest_begin];
            const RouterId dst_router = tile_router_[dest];
            if (dst_router == r) {
              if (!local) continue;
              deliver(dest);
              charge_ejection();
              --arena_live_;
            } else {
              if (local) continue;
              const Topology::RouteEntry e =
                  topology_.route_entry(r, dst_router);
              // Candidate set the selection strategy picks from: the turn
              // model's ports verbatim on the fault-free path, the live
              // subset (plus topology fault fallbacks when every primary
              // candidate is masked) under active faults.
              const std::uint8_t* cand = e.port;
              std::uint32_t cand_count = e.count;
              std::uint8_t live[5];
              bool rerouted = false;
              if (faults_active_) {
                cand_count = 0;
                for (std::uint32_t c = 0; c < e.count; ++c) {
                  if (port_live(base + e.port[c])) {
                    live[cand_count++] = e.port[c];
                  }
                }
                if (cand_count == 0) {
                  PortId fb[2];
                  const std::uint32_t nf =
                      topology_.fault_fallback_candidates(r, dst_router, fb);
                  for (std::uint32_t c = 0; c < nf; ++c) {
                    if (port_live(base + fb[c])) {
                      live[cand_count++] = static_cast<std::uint8_t>(fb[c]);
                    }
                  }
                }
                if (cand_count == 0) {
                  // Every road out is dead: the copy is abandoned here
                  // (counted, never wedged) and the flit pops below.
                  ++stats_.fault.copies_unroutable;
                  --arena_live_;
                  head.dest_count = 0;
                  continue;
                }
                cand = live;
                rerouted = !port_live(base + e.port[0]);
              }
              std::uint32_t chosen = cand[0];
              if (cand_count > 1) {
                // Selection strategy: pick among the legal candidates.
                if (config_.selection ==
                    SelectionStrategy::kFirstCandidate) {
                  for (std::uint32_t c = 0; c < cand_count; ++c) {
                    const std::uint32_t g = base + cand[c];
                    const std::uint32_t cand_slot =
                        port_base_[neighbor_[g]] + reverse_port_[g];
                    if (routers_[neighbor_[g]].can_accept(
                            reverse_port_[g], staged_count_[cand_slot])) {
                      chosen = cand[c];
                      break;
                    }
                  }
                } else {  // kBufferLevel: most free downstream (ties: 1st)
                  std::size_t best_free = 0;
                  for (std::uint32_t c = 0; c < cand_count; ++c) {
                    const std::uint32_t g = base + cand[c];
                    const std::uint32_t cand_port = reverse_port_[g];
                    const std::size_t used =
                        routers_[neighbor_[g]].queue_size(cand_port) +
                        staged_count_[port_base_[neighbor_[g]] +
                                      cand_port];
                    const std::size_t free =
                        used >= config_.buffer_depth
                            ? 0
                            : config_.buffer_depth - used;
                    if (free > best_free) {
                      best_free = free;
                      chosen = cand[c];
                    }
                  }
                }
              }
              if (chosen != out) continue;
              if (rerouted) ++stats_.fault.reroutes;
              forward(head);  // range ownership moves to the copy
            }
            head.dest_count = 0;
            router.advance_rr(out);
            break;  // this output port is used for this cycle
          }

          // Multi-destination flit: partition the remaining dests against
          // this output port — local ejections when out is the local
          // port, otherwise remote dests routed through out.  Multicast
          // always takes each destination's first candidate, so the
          // partition is a pure table scan.
          match_.clear();
          keep_.clear();
          std::size_t dropped = 0;
          std::uint64_t rerouted_dests = 0;
          const TileId* dests = arena_.data() + head.dest_begin;
          for (std::uint32_t d = 0; d < head.dest_count; ++d) {
            const TileId dest = dests[d];
            const RouterId dst_router = tile_router_[dest];
            bool served;
            if (dst_router == r) {
              served = local;
            } else if (local) {
              served = false;
            } else if (!faults_active_) {
              served = topology_.route_entry(r, dst_router).port[0] == out;
            } else {
              // Fault-aware serve port: first live candidate (with
              // topology fallback).  Unroutable dests leave the flit —
              // counted once, here, never rescanned.
              const std::uint32_t p = first_live_port(r, dst_router);
              if (p == kUnroutable) {
                ++dropped;
                continue;
              }
              served = p == out;
              if (served &&
                  !port_live(base +
                             topology_.route_entry(r, dst_router).port[0])) {
                ++rerouted_dests;
              }
            }
            (served ? match_ : keep_).push_back(dest);
          }
          if (dropped != 0) {
            stats_.fault.copies_unroutable += dropped;
            arena_live_ -= dropped;
          }
          if (match_.empty()) {
            if (dropped != 0) {
              // Commit the shrunken dest set even though nothing was
              // served through this port, so the dropped dests are not
              // re-counted by the next output-port scan.
              std::copy(keep_.begin(), keep_.end(),
                        arena_.begin() + head.dest_begin);
              head.dest_count = static_cast<std::uint32_t>(keep_.size());
            }
            continue;
          }
          stats_.fault.reroutes += rerouted_dests;

          if (local) {
            // Deliver every destination attached here (one tile per
            // router).
            for (const TileId dest : match_) deliver(dest);
            charge_ejection();
            arena_live_ -= match_.size();
          } else {
            Flit copy = head;
            if (keep_.empty() && dropped == 0) {
              // Whole set forwards through one port: transfer the range.
            } else {
              copy.dest_begin = static_cast<std::uint32_t>(arena_.size());
              copy.dest_count = static_cast<std::uint32_t>(match_.size());
              arena_.insert(arena_.end(), match_.begin(), match_.end());
            }
            forward(copy);
          }
          // Served destinations leave the head flit (order preserved);
          // it pops once empty.
          if (!keep_.empty()) {
            std::copy(keep_.begin(), keep_.end(),
                      arena_.begin() + head.dest_begin);
          }
          head.dest_count = static_cast<std::uint32_t>(keep_.size());
          router.advance_rr(out);
          break;  // this output port is used for this cycle
        }
      }
      // Pop head flits whose destinations have all been served, and
      // retire fully drained routers from the worklist.
      std::uint64_t occupied = router.occupied_mask();
      while (occupied != 0) {
        const auto in =
            static_cast<std::uint32_t>(std::countr_zero(occupied));
        occupied &= occupied - 1;
        if (router.head(in).dest_count == 0) {
          router.pop(in);
          --in_flight_;
        }
      }
      if (router.all_queues_empty()) {
        active_[w] &= ~(1ULL << (r & 63));
      }
    }
  }

  // ---- Commit staged inter-router moves.
  for (const StagedMove& move : staged_) {
    routers_[move.to_router].push(move.to_port, move.flit);
    active_[move.to_router >> 6] |= 1ULL << (move.to_router & 63);
  }
}

std::uint64_t NocSimulator::run_until(std::uint64_t cycle_limit) {
  while (!halted_) {
    if (now_ >= cycle_limit) break;
    // ---- 0. Apply fault-timeline transitions due at or before `now_`
    // (before injection, so a tile that dies at cycle c never sources or
    // sinks cycle-c traffic).
    if (faults_active_) apply_fault_transitions();
    if (idle()) {
      // Drained and no traffic queued.  A bounded window still accounts
      // its full span of virtual time; an unbounded run ends "now".
      if (cycle_limit != kNoCycleLimit) now_ = cycle_limit;
      break;
    }
    // ---- 1. Budget check, *before* injection: cycle max_cycles is never
    // simulated, so traffic due at or beyond it is never injected — the
    // session halts with it still queued (counted as stranded by finish())
    // instead of absorbing packets the fabric will never move.  Reaching
    // this line means !idle(), so the halt fires identically whether the
    // leftover work is buffered flits or an uninjected tail, at any
    // chunking of the session into run_until windows.
    if (now_ >= config_.max_cycles) {
      stats_.drained = false;
      halted_ = true;
      util::log_warn("NocSimulator: max_cycles reached with ", in_flight_,
                     " flits in flight and ", traffic_.size() - next_event_,
                     " events still queued");
      break;
    }
    // ---- 2. Inject all packets emitted this cycle.
    inject_due();

    if (in_flight_ == 0) {
      if (next_event_ >= traffic_.size()) {
        if (cycle_limit != kNoCycleLimit) now_ = cycle_limit;
        break;
      }
      // Fast-forward idle gaps between traffic bursts — never past the
      // budget: traffic due at max_cycles or later halts above, it is not
      // injected.
      now_ = std::min({traffic_[next_event_].emit_cycle, cycle_limit,
                       config_.max_cycles});
      continue;
    }

    maybe_compact_arena();

    // ---- 3/4. One cycle of arbitration + staged-move commits.
    const std::uint64_t before_delivered = stats_.copies_delivered;
    const std::uint64_t before_hops = stats_.link_hops;
    const std::uint64_t before_unroutable = stats_.fault.copies_unroutable;
    const std::size_t before_in_flight = in_flight_;
    simulate_cycle();
    ++now_;
    ++busy_cycles_;

    if (!event_driven_) continue;
    // ---- 5. Event engine: a cycle that moved nothing proves the fabric
    // state is a fixed point of simulate_cycle — every ready head is
    // backpressured or arbitration-blocked by state that only changes when
    // something moves, round-robin pointers advance only on serves, and the
    // fault RNG draws only on forwards.  Every counter below is bumped by
    // each kind of movement (deliveries and forwards via copies_delivered /
    // link_hops — dropped-on-the-wire flits included —, abandoned copies
    // via copies_unroutable, pops via in_flight_), so equality means the
    // next state change can only come from outside the fabric: a parked
    // off-chip flit un-parking (wake_), a traffic emission, or a fault
    // transition.  Jump straight to the earliest one.  The skipped span
    // still counts as busy — the cycle oracle simulates (and the windowed
    // energy/DVFS accounting observes) those stalled cycles as busy ones.
    const bool progress = stats_.copies_delivered != before_delivered ||
                          stats_.link_hops != before_hops ||
                          stats_.fault.copies_unroutable !=
                              before_unroutable ||
                          in_flight_ != before_in_flight;
    if (progress) continue;
    std::uint64_t wake = wake_.next_at_or_after(now_);
    if (next_event_ < traffic_.size()) {
      wake = std::min(wake, traffic_[next_event_].emit_cycle);
    }
    if (faults_active_) {
      wake = std::min(wake, fault_model_.next_transition_cycle());
    }
    wake = std::min({wake, cycle_limit, config_.max_cycles});
    if (wake > now_) {
      busy_cycles_ += wake - now_;
      now_ = wake;
    }
  }
  return now_;
}

std::uint64_t NocSimulator::run_cycles(std::uint64_t cycles) {
  const std::uint64_t limit =
      cycles > kNoCycleLimit - now_ ? kNoCycleLimit : now_ + cycles;
  return run_until(limit);
}

std::vector<DeliveredSpike> NocSimulator::drain_delivered() {
  std::vector<DeliveredSpike> out;
  out.swap(delivered_);
  return out;
}

WindowEnergySample NocSimulator::close_energy_window() {
  WindowEnergySample s;
  s.index = window_report_.windows.size();
  s.start_cycle = win_start_cycle_;
  s.end_cycle = now_;
  s.busy_cycles = busy_cycles_ - win_busy_;
  s.flits_injected = stats_.flits_injected - win_flits_injected_;
  s.copies_delivered = stats_.copies_delivered - win_copies_delivered_;
  s.link_hops = stats_.link_hops - win_link_hops_;
  s.offchip_link_hops = stats_.offchip_link_hops - win_offchip_link_hops_;
  s.router_traversals = stats_.router_traversals - win_router_traversals_;
  const bool mon = monitor_.has_value();
  for (std::size_t i = 0; i < link_flits_.size(); ++i) {
    const std::uint64_t delta = link_flits_[i] - win_link_flits_[i];
    s.peak_link_flits = std::max(s.peak_link_flits, delta);
    win_link_flits_[i] = link_flits_[i];
    if (mon) monitor_scratch_[i] = delta;
  }
  if (mon) monitor_->observe_window(monitor_scratch_, s.end_cycle - s.start_cycle);
  metrics_.observe(mid_.window_peak, s.peak_link_flits);
  if (s.end_cycle > s.start_cycle) {
    metrics_.observe(mid_.window_utilization,
                     s.busy_cycles * 100 / (s.end_cycle - s.start_cycle));
  }
  s.energy_pj = config_.energy.activity_energy_pj(
      static_cast<double>(s.codec_events()),
      static_cast<double>(s.link_hops - s.offchip_link_hops),
      static_cast<double>(s.router_traversals),
      static_cast<double>(s.offchip_link_hops));
  win_start_cycle_ = now_;
  win_busy_ = busy_cycles_;
  win_flits_injected_ = stats_.flits_injected;
  win_copies_delivered_ = stats_.copies_delivered;
  win_link_hops_ = stats_.link_hops;
  win_offchip_link_hops_ = stats_.offchip_link_hops;
  win_router_traversals_ = stats_.router_traversals;

  WindowEnergyReport& r = window_report_;
  r.busy_cycles += s.busy_cycles;
  r.codec_events += s.codec_events();
  r.link_hops += s.link_hops;
  r.offchip_link_hops += s.offchip_link_hops;
  r.router_traversals += s.router_traversals;
  // Totals are exact integer sums of the deltas, i.e. exactly the session
  // counters, so this equals finish()'s stats.global_energy_pj bit for bit.
  r.total_energy_pj = config_.energy.activity_energy_pj(
      static_cast<double>(r.codec_events),
      static_cast<double>(r.link_hops - r.offchip_link_hops),
      static_cast<double>(r.router_traversals),
      static_cast<double>(r.offchip_link_hops));
  r.windows.push_back(s);
  return s;
}

NocRunResult NocSimulator::finish() {
  NocRunResult result;
  stats_.duration_cycles = now_;
  // Interconnect energy is the exact activity counters priced at the model
  // constants — independent of charge order and of where the session put
  // its window boundaries.  Encodes pair with flits_injected, decodes with
  // copies_delivered.
  stats_.global_energy_pj = config_.energy.activity_energy_pj(
      static_cast<double>(stats_.flits_injected + stats_.copies_delivered),
      static_cast<double>(stats_.link_hops - stats_.offchip_link_hops),
      static_cast<double>(stats_.router_traversals),
      static_cast<double>(stats_.offchip_link_hops));
  // Fold the trailing (never-closed) span into the window report so its
  // totals always cover the whole session; a one-shot run() thereby
  // reports one window spanning the full trace.
  if (window_report_.windows.empty() ||
      stats_.flits_injected != win_flits_injected_ ||
      stats_.copies_delivered != win_copies_delivered_ ||
      stats_.link_hops != win_link_hops_ ||
      stats_.router_traversals != win_router_traversals_ ||
      busy_cycles_ != win_busy_) {
    close_energy_window();
  }
  // "Drained" keeps its one-shot meaning for sessions: all offered traffic
  // completed.  A bounded window that left flits in flight (or queued
  // events uninjected) did not drain, max_cycles halt or not.
  stats_.drained = !halted_ && idle();
  // Undelivered leftovers — live destination copies still buffered in the
  // fabric plus the dest sets of never-injected queued events — close the
  // conservation identity copies_delivered + copies_lost() == offered for
  // non-drained sessions.  Exactly zero on drained ones.
  std::uint64_t stranded = arena_live_;
  for (std::size_t i = next_event_; i < traffic_.size(); ++i) {
    stranded += traffic_[i].dest_tiles.size();
  }
  stats_.fault.copies_stranded = stranded;
  stats_.link_flits.clear();
  const std::uint32_t n = topology_.router_count();
  for (RouterId r = 0; r < n; ++r) {
    for (std::uint32_t o = 0; o < topology_.port_count(r); ++o) {
      const std::uint64_t flits = link_flits_[port_base_[r] + o];
      if (flits == 0) continue;
      stats_.link_flits.emplace_back(
          (static_cast<std::uint64_t>(r) << 32) |
              neighbor_[port_base_[r] + o],
          flits);
    }
  }
  std::sort(stats_.link_flits.begin(), stats_.link_flits.end());
  // Publish the session's counters into the metrics registry once, off the
  // hot path; window histograms were already observed at each close.
  metrics_.add(mid_.packets, stats_.packets_injected);
  metrics_.add(mid_.flits, stats_.flits_injected);
  metrics_.add(mid_.delivered, stats_.copies_delivered);
  metrics_.add(mid_.link_hops, stats_.link_hops);
  metrics_.add(mid_.offchip, stats_.offchip_link_hops);
  metrics_.add(mid_.router_traversals, stats_.router_traversals);
  metrics_.add(mid_.busy, busy_cycles_);
  metrics_.add(mid_.reroutes, stats_.fault.reroutes);
  metrics_.add(mid_.flits_dropped, stats_.fault.flits_dropped);
  metrics_.add(mid_.copies_lost, stats_.fault.copies_lost());
  metrics_.set(mid_.link_max_flits, stats_.max_link_flits());
  metrics_.set(mid_.links_used, stats_.link_flits.size());
  metrics_.set(mid_.windows, window_report_.windows.size());
  metrics_.set(mid_.trace_recorded, tracer_.recorded());
  metrics_.set(mid_.trace_evicted, tracer_.evicted());
  result.metrics = metrics_.snapshot();
  if (monitor_) {
    result.congestion = monitor_->report();
    for (obs::HotLink& h : result.congestion.hot) {
      h.from_router = router_of_port(h.link);
      h.to_router = neighbor_[h.link];
    }
  }
  if (trace_active_) {
    result.trace = tracer_.events();
    result.trace_digest = tracer_.digest();
    result.trace_recorded = tracer_.recorded();
  }
  result.stats = stats_;
  // finish() is terminal for the session (begin() rebuilds the report), so
  // the per-window sample vector moves out instead of deep-copying.
  result.window_energy = std::move(window_report_);
  result.delivered = drain_delivered();
  if (config_.collect_delivered) {
    result.snn = compute_snn_metrics(result.delivered);
  }
  return result;
}

NocRunResult NocSimulator::run(std::vector<SpikePacketEvent> traffic) {
  begin();
  enqueue(std::move(traffic));
  run_until(kNoCycleLimit);
  return finish();
}

}  // namespace snnmap::noc
