// Determinism regression for the parallel batch-evaluation layer: with a
// fixed seed, every optimizer must produce bit-identical results whether
// fitness evaluation (PSO/GA) or restart chains (SA) run serially or on a
// worker pool, and batched SNN scenario simulation must match standalone
// Simulator runs bit for bit regardless of thread count or submission
// order.  Guards against evaluation-order nondeterminism sneaking into the
// hot path.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/annealing.hpp"
#include "core/batch_eval.hpp"
#include "core/genetic.hpp"
#include "core/placement.hpp"
#include "core/pso.hpp"
#include "cosim/cosim.hpp"
#include "noc/topology.hpp"
#include "snn/graph.hpp"
#include "snn/network.hpp"
#include "snn/simulator.hpp"
#include "util/rng.hpp"

namespace snnmap::core {
namespace {

/// Random sparse workload: 48 neurons, mixed spike counts.
snn::SnnGraph workload() {
  util::Rng rng(77);
  std::vector<snn::GraphEdge> edges;
  for (int e = 0; e < 300; ++e) {
    const auto pre = static_cast<std::uint32_t>(rng.below(48));
    auto post = static_cast<std::uint32_t>(rng.below(48));
    if (post == pre) post = (post + 1) % 48;
    edges.push_back({pre, post, 1.0F});
  }
  std::vector<snn::SpikeTrain> trains;
  for (int i = 0; i < 48; ++i) {
    snn::SpikeTrain train;
    const auto spikes = rng.below(5) + 1;
    for (std::uint64_t s = 0; s < spikes; ++s) {
      train.push_back(static_cast<double>(s) + 0.25);
    }
    trains.push_back(std::move(train));
  }
  return snn::SnnGraph::from_parts(48, std::move(edges), std::move(trains),
                                   10.0);
}

hw::Architecture arch_6x10() {
  hw::Architecture arch;
  arch.crossbar_count = 6;
  arch.neurons_per_crossbar = 10;
  return arch;
}

TEST(Determinism, PsoSerialAndParallelMatchBitForBit) {
  const auto graph = workload();
  PsoConfig config;
  config.swarm_size = 12;
  config.iterations = 8;
  config.seed = 5;
  config.track_history = true;

  config.threads = 1;
  const auto serial = PsoPartitioner(graph, arch_6x10(), config).optimize();
  config.threads = 4;
  const auto parallel = PsoPartitioner(graph, arch_6x10(), config).optimize();

  EXPECT_EQ(serial.best, parallel.best);
  EXPECT_EQ(serial.best_cost, parallel.best_cost);
  EXPECT_EQ(serial.iterations_run, parallel.iterations_run);
  EXPECT_EQ(serial.fitness_evaluations, parallel.fitness_evaluations);
  EXPECT_EQ(serial.history, parallel.history);
}

TEST(Determinism, GeneticSerialAndParallelMatchBitForBit) {
  const auto graph = workload();
  GeneticConfig config;
  config.population = 16;
  config.generations = 10;
  config.seed = 9;
  config.track_history = true;

  config.threads = 1;
  const auto serial = genetic_partition(graph, arch_6x10(), config);
  config.threads = 4;
  const auto parallel = genetic_partition(graph, arch_6x10(), config);

  EXPECT_EQ(serial.best, parallel.best);
  EXPECT_EQ(serial.best_cost, parallel.best_cost);
  EXPECT_EQ(serial.generations_run, parallel.generations_run);
  EXPECT_EQ(serial.fitness_evaluations, parallel.fitness_evaluations);
  EXPECT_EQ(serial.history, parallel.history);
}

TEST(Determinism, AnnealingRestartChainsMatchBitForBit) {
  const auto graph = workload();
  AnnealingConfig config;
  config.moves = 4000;
  config.seed = 13;
  config.restarts = 3;

  config.threads = 1;
  const auto serial = annealing_partition(graph, arch_6x10(), config);
  config.threads = 4;
  const auto parallel = annealing_partition(graph, arch_6x10(), config);

  EXPECT_EQ(serial.best, parallel.best);
  EXPECT_EQ(serial.best_cost, parallel.best_cost);
  EXPECT_EQ(serial.best_chain, parallel.best_chain);
  EXPECT_EQ(serial.moves_proposed, parallel.moves_proposed);
  EXPECT_EQ(serial.moves_accepted, parallel.moves_accepted);
}

TEST(Determinism, AnnealingSingleRestartReproducesLegacyChain) {
  // restarts=1 must reuse the base seed verbatim: adding the restart layer
  // cannot silently change existing single-chain results.
  const auto graph = workload();
  AnnealingConfig config;
  config.moves = 4000;
  config.seed = 13;

  config.restarts = 1;
  const auto single = annealing_partition(graph, arch_6x10(), config);
  config.restarts = 3;
  config.threads = 2;
  const auto multi = annealing_partition(graph, arch_6x10(), config);

  // Chain 0 of the multi-restart run is the legacy chain, so the winner can
  // only be at least as good.
  EXPECT_LE(multi.best_cost, single.best_cost);
  if (multi.best_chain == 0) {
    EXPECT_EQ(multi.best, single.best);
    EXPECT_EQ(multi.best_cost, single.best_cost);
  }
}

/// Deterministic little SNN used by the batch-evaluator tests; `variant`
/// perturbs the wiring seed so scenarios are distinguishable.
snn::Network batch_snn_network(std::uint64_t variant) {
  snn::Network net;
  util::Rng rng(100 + variant);
  const auto in = net.add_poisson_group("in", 8, 40.0);
  const auto mid = net.add_lif_group("mid", 12);
  const auto out = net.add_izhikevich_group(
      "out", 6, snn::IzhikevichParams::regular_spiking());
  net.connect_random(in, mid, 0.6, snn::WeightSpec::uniform(8.0, 13.0), rng,
                     /*delay=*/1, /*plastic=*/true);
  net.connect_random(mid, out, 0.5, snn::WeightSpec::uniform(6.0, 9.0), rng,
                     /*delay=*/3);
  return net;
}

std::vector<SnnScenario> batch_snn_scenarios() {
  std::vector<SnnScenario> scenarios;
  for (std::uint64_t v = 0; v < 6; ++v) {
    snn::SimulationConfig config;
    config.duration_ms = 300.0;
    config.seed = 7 * v + 1;
    config.enable_stdp = v % 2 == 0;
    scenarios.push_back({[v] { return batch_snn_network(v); }, config});
  }
  return scenarios;
}

void expect_same_results(const std::vector<SnnRunResult>& a,
                         const std::vector<SnnRunResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].result.total_spikes, b[i].result.total_spikes) << i;
    EXPECT_EQ(a[i].result.spikes, b[i].result.spikes) << i;
    EXPECT_EQ(a[i].final_weights, b[i].final_weights) << i;
  }
}

TEST(Determinism, BatchSnnSerialAndParallelMatchBitForBit) {
  const auto scenarios = batch_snn_scenarios();
  BatchSnnEvaluator serial(1);
  BatchSnnEvaluator parallel(4);
  expect_same_results(serial.run_all(scenarios), parallel.run_all(scenarios));
}

TEST(Determinism, BatchSnnMatchesStandaloneSimulator) {
  const auto scenarios = batch_snn_scenarios();
  BatchSnnEvaluator evaluator(3);
  const auto batched = evaluator.run_all(scenarios);
  ASSERT_EQ(batched.size(), scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    snn::Network net = scenarios[i].build();
    snn::Simulator sim(net, scenarios[i].config);
    const auto standalone = sim.run();
    EXPECT_EQ(batched[i].result.spikes, standalone.spikes) << i;
    EXPECT_EQ(batched[i].result.total_spikes, standalone.total_spikes) << i;
    for (std::size_t s = 0; s < net.synapses().size(); ++s) {
      EXPECT_EQ(batched[i].final_weights[s], net.synapses()[s].weight);
    }
  }
}

TEST(Determinism, BatchSnnIndependentOfSubmissionOrder) {
  const auto scenarios = batch_snn_scenarios();
  std::vector<SnnScenario> reversed(scenarios.rbegin(), scenarios.rend());
  BatchSnnEvaluator evaluator(4);
  const auto forward = evaluator.run_all(scenarios);
  auto backward = evaluator.run_all(reversed);
  std::reverse(backward.begin(), backward.end());
  expect_same_results(forward, backward);
}

TEST(Determinism, BatchSnnSeedSweepMatchesPerSeedRuns) {
  snn::SimulationConfig config;
  config.duration_ms = 250.0;
  const std::vector<std::uint64_t> seeds = {3, 1, 4, 1, 5, 9};
  BatchSnnEvaluator evaluator(0);  // auto-resolve thread count
  const auto sweep = evaluator.run_seeds([] { return batch_snn_network(2); },
                                         config, seeds);
  ASSERT_EQ(sweep.size(), seeds.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    snn::Network net = batch_snn_network(2);
    config.seed = seeds[i];
    snn::Simulator sim(net, config);
    EXPECT_EQ(sweep[i].result.spikes, sim.run().spikes) << "seed " << seeds[i];
  }
  // Duplicate seeds (index 1 and 3) must produce identical results.
  EXPECT_EQ(sweep[1].result.spikes, sweep[3].result.spikes);
  EXPECT_EQ(sweep[1].final_weights, sweep[3].final_weights);
}

/// Like batch_snn_network but without plastic synapses: the half/half
/// partition below cuts the in->mid projection, and cut synapses must not
/// be plastic (their weights would live on the remote crossbar).
snn::Network batch_cosim_network(std::uint64_t variant) {
  snn::Network net;
  util::Rng rng(100 + variant);
  const auto in = net.add_poisson_group("in", 8, 40.0);
  const auto mid = net.add_lif_group("mid", 12);
  const auto out = net.add_izhikevich_group(
      "out", 6, snn::IzhikevichParams::regular_spiking());
  net.connect_random(in, mid, 0.6, snn::WeightSpec::uniform(8.0, 13.0), rng,
                     /*delay=*/1);
  net.connect_random(mid, out, 0.5, snn::WeightSpec::uniform(6.0, 9.0), rng,
                     /*delay=*/3);
  return net;
}

/// Co-sim scenario batch over the deterministic little SNNs: two crossbars
/// (first half / second half of the ids), varying seeds and cycle budgets —
/// including congested ones, where transport actually reorders work.
std::vector<CoSimScenario> batch_cosim_scenarios() {
  std::vector<CoSimScenario> scenarios;
  for (std::uint64_t v = 0; v < 6; ++v) {
    snn::Network probe = batch_cosim_network(v);
    const std::uint32_t n = probe.neuron_count();
    Partition partition(n, 2);
    for (std::uint32_t i = 0; i < n; ++i) {
      partition.assign(i, i < n / 2 ? 0 : 1);
    }
    noc::Topology topology = noc::Topology::ring(2);
    CoSimScenario sc{
        .build = [v] { return batch_cosim_network(v); },
        .partition = std::move(partition),
        .placement = identity_placement(2, topology),
        .topology = std::move(topology),
        .config = {},
        .with_ideal_baseline = true};
    sc.config.snn.duration_ms = 250.0;
    sc.config.snn.seed = 7 * v + 1;
    sc.config.cycles_per_timestep = v % 2 == 0 ? 512 : 3;  // ideal / congested
    if (v == 5) sc.config.receive_queue_depth = 1;
    // Cover every DVFS policy so the frequency trajectory and the scaled
    // energy accumulators are pinned across thread counts too.
    sc.config.dvfs.kind = v % 3 == 0
                              ? cosim::DvfsPolicyKind::kFixed
                              : (v % 3 == 1
                                     ? cosim::DvfsPolicyKind::
                                           kUtilizationThreshold
                                     : cosim::DvfsPolicyKind::kDeadlineSlack);
    scenarios.push_back(std::move(sc));
  }
  return scenarios;
}

void expect_same_cosim_results(const std::vector<CoSimOutcome>& a,
                               const std::vector<CoSimOutcome>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].result.snn.total_spikes, b[i].result.snn.total_spikes)
        << i;
    EXPECT_EQ(a[i].result.snn.spikes, b[i].result.snn.spikes) << i;
    EXPECT_EQ(a[i].result.fidelity.copies_accepted,
              b[i].result.fidelity.copies_accepted)
        << i;
    EXPECT_EQ(a[i].result.fidelity.deadline_misses,
              b[i].result.fidelity.deadline_misses)
        << i;
    EXPECT_EQ(a[i].result.fidelity.receive_drops,
              b[i].result.fidelity.receive_drops)
        << i;
    // Energy accumulators and the DVFS trajectory are part of the
    // bit-identical contract: EXPECT_EQ on the doubles, not NEAR.
    EXPECT_EQ(a[i].result.fidelity.fabric_energy_pj,
              b[i].result.fidelity.fabric_energy_pj)
        << i;
    EXPECT_EQ(a[i].result.fidelity.per_step_energy_pj,
              b[i].result.fidelity.per_step_energy_pj)
        << i;
    EXPECT_EQ(a[i].result.fidelity.per_step_cycles,
              b[i].result.fidelity.per_step_cycles)
        << i;
    EXPECT_EQ(a[i].result.fidelity.window_energy_pj.sum(),
              b[i].result.fidelity.window_energy_pj.sum())
        << i;
    EXPECT_EQ(a[i].result.fidelity.freq_scale.mean(),
              b[i].result.fidelity.freq_scale.mean())
        << i;
    EXPECT_EQ(a[i].result.noc.global_energy_pj,
              b[i].result.noc.global_energy_pj)
        << i;
    EXPECT_EQ(a[i].divergence.matched, b[i].divergence.matched) << i;
    EXPECT_EQ(a[i].divergence.only_ideal, b[i].divergence.only_ideal) << i;
    EXPECT_EQ(a[i].divergence.only_cosim, b[i].divergence.only_cosim) << i;
    // The resilience path is seeded per scenario; its counters are part of
    // the same bit-identical contract (all zero on fault-free scenarios).
    EXPECT_EQ(a[i].result.resilience.noc_faults.flits_dropped,
              b[i].result.resilience.noc_faults.flits_dropped)
        << i;
    EXPECT_EQ(a[i].result.resilience.noc_faults.copies_lost(),
              b[i].result.resilience.noc_faults.copies_lost())
        << i;
    EXPECT_EQ(a[i].result.resilience.retransmit_packets,
              b[i].result.resilience.retransmit_packets)
        << i;
    EXPECT_EQ(a[i].result.resilience.retry_recoveries,
              b[i].result.resilience.retry_recoveries)
        << i;
    EXPECT_EQ(a[i].result.resilience.spikes_lost_timeout,
              b[i].result.resilience.spikes_lost_timeout)
        << i;
    EXPECT_EQ(a[i].result.resilience.neurons_migrated,
              b[i].result.resilience.neurons_migrated)
        << i;
    EXPECT_EQ(a[i].result.resilience.retransmit_energy_pj,
              b[i].result.resilience.retransmit_energy_pj)
        << i;
    // Observability is part of the contract too: the trace digest covers
    // every recorded event (zero when tracing is off) and the congestion
    // monitor's EWMAs are pure functions of the windowed activity.
    EXPECT_EQ(a[i].result.trace_digest, b[i].result.trace_digest) << i;
    EXPECT_EQ(a[i].result.trace_recorded, b[i].result.trace_recorded) << i;
    EXPECT_EQ(a[i].result.fidelity.congestion.hot_links,
              b[i].result.fidelity.congestion.hot_links)
        << i;
    EXPECT_EQ(a[i].result.fidelity.congestion.max_ewma_occupancy,
              b[i].result.fidelity.congestion.max_ewma_occupancy)
        << i;
  }
}

TEST(Determinism, BatchCoSimSerialAndParallelMatchBitForBit) {
  BatchCoSimEvaluator serial(1);
  BatchCoSimEvaluator parallel(4);
  expect_same_cosim_results(serial.run_all(batch_cosim_scenarios()),
                            parallel.run_all(batch_cosim_scenarios()));
}

TEST(Determinism, BatchCoSimMatchesStandaloneCoSimulator) {
  auto scenarios = batch_cosim_scenarios();
  BatchCoSimEvaluator evaluator(3);
  const auto batched = evaluator.run_all(batch_cosim_scenarios());
  ASSERT_EQ(batched.size(), scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    snn::Network net = scenarios[i].build();
    cosim::CoSimulator sim(net, scenarios[i].partition,
                           scenarios[i].placement,
                           std::move(scenarios[i].topology),
                           scenarios[i].config);
    const auto standalone = sim.run();
    EXPECT_EQ(batched[i].result.snn.spikes, standalone.snn.spikes) << i;
    EXPECT_EQ(batched[i].result.fidelity.copies_accepted,
              standalone.fidelity.copies_accepted)
        << i;
  }
}

TEST(Determinism, BatchCoSimIndependentOfSubmissionOrder) {
  auto forward_scenarios = batch_cosim_scenarios();
  auto reversed_scenarios = batch_cosim_scenarios();
  std::reverse(reversed_scenarios.begin(), reversed_scenarios.end());
  BatchCoSimEvaluator evaluator(4);
  const auto forward = evaluator.run_all(std::move(forward_scenarios));
  auto backward = evaluator.run_all(std::move(reversed_scenarios));
  std::reverse(backward.begin(), backward.end());
  expect_same_cosim_results(forward, backward);
}

/// Faulted variants of the co-sim batch: seeded random faults, flit drops,
/// the AER retry protocol, and one scheduled permanent tile fault — the
/// full resilience path under parallel batch evaluation.
std::vector<CoSimScenario> batch_faulted_scenarios() {
  std::vector<CoSimScenario> scenarios = batch_cosim_scenarios();
  for (std::size_t v = 0; v < scenarios.size(); ++v) {
    noc::FaultConfig& faults = scenarios[v].config.noc.faults;
    faults.seed = 40 + v;
    faults.flit_drop_probability = v % 2 == 0 ? 0.1 : 0.0;
    if (v % 3 == 0) {
      faults.link_fault_rate = 0.3;
      faults.transient_link_rate = 0.3;
      faults.transient_duration_cycles = 64;
      // horizon_cycles stays 0: the co-simulator auto-fills its timeline.
    }
    if (v == 4) {
      noc::ScheduledFault f;
      f.kind = noc::ScheduledFault::Kind::kTile;
      f.tile = 1;
      f.start_cycle = 50 * scenarios[v].config.cycles_per_timestep;
      faults.scheduled.push_back(f);
    }
    if (v % 2 == 1) {
      scenarios[v].config.retry.enabled = true;
      scenarios[v].config.retry.max_retries = 4;
    }
  }
  return scenarios;
}

TEST(Determinism, FaultedBatchCoSimSerialAndParallelMatchBitForBit) {
  BatchCoSimEvaluator serial(1);
  BatchCoSimEvaluator parallel(4);
  expect_same_cosim_results(serial.run_all(batch_faulted_scenarios()),
                            parallel.run_all(batch_faulted_scenarios()));
}

/// The faulted batch with full observability on: every scenario traces into
/// a small ring (forcing eviction) and runs the congestion monitor.
std::vector<CoSimScenario> batch_observed_scenarios() {
  std::vector<CoSimScenario> scenarios = batch_faulted_scenarios();
  for (CoSimScenario& sc : scenarios) {
    sc.config.noc.trace.enabled = true;
    sc.config.noc.trace.ring_capacity = 256;
    sc.config.noc.monitor.enabled = true;
    sc.config.noc.monitor.hot_occupancy = 0.01;
    sc.config.noc.monitor.persistence_windows = 2;
  }
  return scenarios;
}

TEST(Determinism, ObservedBatchCoSimSerialAndParallelMatchBitForBit) {
  BatchCoSimEvaluator serial(1);
  BatchCoSimEvaluator parallel(4);
  const auto a = serial.run_all(batch_observed_scenarios());
  const auto b = parallel.run_all(batch_observed_scenarios());
  expect_same_cosim_results(a, b);
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Tracing was on: something recorded, and the full streams match even
    // though the 256-entry ring evicted most of them.
    EXPECT_GT(a[i].result.trace_recorded, 0u) << i;
    EXPECT_EQ(a[i].result.trace, b[i].result.trace) << i;
    ASSERT_TRUE(a[i].result.fidelity.congestion.monitored) << i;
  }
}

TEST(Determinism, ObservabilityDoesNotPerturbTheCoSim) {
  // Trace + monitor on must leave the simulation itself bit-identical.
  BatchCoSimEvaluator evaluator(2);
  const auto plain = evaluator.run_all(batch_faulted_scenarios());
  const auto observed = evaluator.run_all(batch_observed_scenarios());
  ASSERT_EQ(plain.size(), observed.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i].result.snn.spikes, observed[i].result.snn.spikes) << i;
    EXPECT_EQ(plain[i].result.fidelity.copies_accepted,
              observed[i].result.fidelity.copies_accepted)
        << i;
    EXPECT_EQ(plain[i].result.noc.global_energy_pj,
              observed[i].result.noc.global_energy_pj)
        << i;
    EXPECT_EQ(plain[i].result.resilience.noc_faults.flits_dropped,
              observed[i].result.resilience.noc_faults.flits_dropped)
        << i;
  }
}

TEST(Determinism, FaultedBatchCoSimIndependentOfSubmissionOrder) {
  auto reversed_scenarios = batch_faulted_scenarios();
  std::reverse(reversed_scenarios.begin(), reversed_scenarios.end());
  BatchCoSimEvaluator evaluator(4);
  const auto forward = evaluator.run_all(batch_faulted_scenarios());
  auto backward = evaluator.run_all(std::move(reversed_scenarios));
  std::reverse(backward.begin(), backward.end());
  expect_same_cosim_results(forward, backward);
}

TEST(Determinism, FaultSweepMatchesStandaloneRuns) {
  // run_fault_sweep overlays each FaultConfig onto the base scenario; every
  // slot must be bit-identical to a standalone run with the same overlay,
  // and the all-default entry is the fault-free baseline.
  auto scenarios = batch_cosim_scenarios();
  CoSimScenario& base = scenarios[0];

  std::vector<noc::FaultConfig> sweep(3);
  sweep[1].seed = 11;
  sweep[1].flit_drop_probability = 0.15;
  sweep[2].seed = 11;
  sweep[2].link_fault_rate = 0.4;
  sweep[2].transient_link_rate = 0.4;
  sweep[2].transient_duration_cycles = 128;

  BatchCoSimEvaluator evaluator(4);
  const auto results = evaluator.run_fault_sweep(base, sweep);
  ASSERT_EQ(results.size(), sweep.size());
  EXPECT_FALSE(results[0].result.resilience.any());
  EXPECT_GT(results[1].result.resilience.noc_faults.flits_dropped, 0u);

  for (std::size_t i = 0; i < sweep.size(); ++i) {
    CoSimScenario sc = base;
    sc.config.noc.faults = sweep[i];
    snn::Network net = sc.build();
    cosim::CoSimulator sim(net, sc.partition, sc.placement,
                           std::move(sc.topology), sc.config);
    const auto standalone = sim.run();
    EXPECT_EQ(results[i].result.snn.spikes, standalone.snn.spikes) << i;
    EXPECT_EQ(results[i].result.resilience.noc_faults.flits_dropped,
              standalone.resilience.noc_faults.flits_dropped)
        << i;
    EXPECT_EQ(results[i].result.resilience.noc_faults.copies_lost(),
              standalone.resilience.noc_faults.copies_lost())
        << i;
    EXPECT_EQ(results[i].result.fidelity.fabric_energy_pj,
              standalone.fidelity.fabric_energy_pj)
        << i;
  }
}

TEST(Determinism, PsoThreadCountZeroMatchesExplicitCounts) {
  const auto graph = workload();
  PsoConfig config;
  config.swarm_size = 8;
  config.iterations = 5;
  config.seed = 21;

  config.threads = 0;  // auto-resolve to hardware_concurrency()
  const auto auto_resolved =
      PsoPartitioner(graph, arch_6x10(), config).optimize();
  config.threads = 3;
  const auto explicit_three =
      PsoPartitioner(graph, arch_6x10(), config).optimize();

  EXPECT_EQ(auto_resolved.best, explicit_three.best);
  EXPECT_EQ(auto_resolved.best_cost, explicit_three.best_cost);
}

}  // namespace
}  // namespace snnmap::core
