// Example 5: run-time remapping (the paper's Sec. VI future work).
//
// A deployed SNN whose activity rotates between cluster groups is mapped
// once offline with PSO; as phases change, a stale static map leaves hot
// clusters split across crossbars.  The RuntimeRemapper migrates a small
// budget of neurons per phase and recovers most of the lost efficiency.
//
//   ./build/examples/runtime_remap_demo
#include <iostream>

#include "apps/phased.hpp"
#include "core/cost.hpp"
#include "core/pso.hpp"
#include "core/runtime_remap.hpp"
#include "util/table.hpp"

int main() {
  using namespace snnmap;

  apps::PhasedConfig workload;
  workload.clusters = 6;
  workload.cluster_size = 12;
  workload.seed = 9;
  const auto phase0 = apps::build_phased_clusters(workload, 0);

  auto arch = hw::Architecture::sized_for(phase0.neuron_count(), 24,
                                          hw::InterconnectKind::kTree);
  arch.tree_arity = 4;
  std::cout << "workload: " << phase0.neuron_count() << " neurons in "
            << workload.clusters << " clusters; device: " << arch.describe()
            << "\n\n";

  core::PsoConfig pso;
  pso.swarm_size = 40;
  pso.iterations = 40;
  const auto offline =
      core::PsoPartitioner(phase0, arch, pso).optimize().best;

  core::RemapConfig budgeted;
  budgeted.max_migrations_per_epoch = 12;
  core::RuntimeRemapper remapper(arch, offline, budgeted);

  util::Table table({"phase", "static map (AER packets)",
                     "remapped (AER packets)", "migrations this phase"});
  for (std::uint32_t phase = 0; phase < 6; ++phase) {
    const auto graph = apps::build_phased_clusters(workload, phase);
    const core::CostModel cost(graph);
    const auto epoch = remapper.observe_phase(graph);
    table.begin_row();
    table.cell(static_cast<std::size_t>(phase));
    table.cell(static_cast<std::size_t>(cost.multicast_packet_count(offline)));
    table.cell(static_cast<std::size_t>(epoch.cost_after));
    table.cell(static_cast<std::size_t>(epoch.migrations));
  }
  std::cout << table.to_ascii();
  std::cout << "\nTotal migrations: " << remapper.total_migrations()
            << " (full remapping would move up to "
            << phase0.neuron_count() << " neurons per phase).\n";
  return 0;
}
