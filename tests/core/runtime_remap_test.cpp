#include "core/runtime_remap.hpp"

#include <gtest/gtest.h>

#include "apps/phased.hpp"
#include "core/cost.hpp"
#include "core/pso.hpp"

namespace snnmap::core {
namespace {

apps::PhasedConfig small_workload() {
  apps::PhasedConfig cfg;
  cfg.clusters = 6;
  cfg.cluster_size = 8;
  cfg.seed = 5;
  cfg.duration_ms = 200.0;
  return cfg;
}

hw::Architecture arch_for(const snn::SnnGraph& graph) {
  auto arch = hw::Architecture::sized_for(graph.neuron_count(), 16,
                                          hw::InterconnectKind::kTree);
  arch.tree_arity = 4;
  return arch;
}

Partition offline_partition(const snn::SnnGraph& graph,
                            const hw::Architecture& arch) {
  PsoConfig pso;
  pso.swarm_size = 20;
  pso.iterations = 20;
  return PsoPartitioner(graph, arch, pso).optimize().best;
}

TEST(RuntimeRemapper, ValidatesInitialPartition) {
  const auto g = apps::build_phased_clusters(small_workload(), 0);
  const auto arch = arch_for(g);
  Partition incomplete(g.neuron_count(), arch.crossbar_count);
  EXPECT_THROW(RuntimeRemapper(arch, incomplete, {}), std::runtime_error);
}

TEST(RuntimeRemapper, RejectsMismatchedPhaseGraph) {
  const auto g = apps::build_phased_clusters(small_workload(), 0);
  const auto arch = arch_for(g);
  RuntimeRemapper remapper(arch, offline_partition(g, arch), {});
  auto other_cfg = small_workload();
  other_cfg.cluster_size = 4;
  const auto other = apps::build_phased_clusters(other_cfg, 0);
  EXPECT_THROW(remapper.observe_phase(other), std::invalid_argument);
}

TEST(RuntimeRemapper, NeverIncreasesPhaseCost) {
  const auto cfg = small_workload();
  const auto g0 = apps::build_phased_clusters(cfg, 0);
  const auto arch = arch_for(g0);
  RuntimeRemapper remapper(arch, offline_partition(g0, arch), {});
  for (std::uint32_t phase = 0; phase < 4; ++phase) {
    const auto g = apps::build_phased_clusters(cfg, phase);
    const auto report = remapper.observe_phase(g);
    EXPECT_LE(report.cost_after, report.cost_before) << "phase " << phase;
    EXPECT_NO_THROW(remapper.partition().validate(arch));
  }
}

TEST(RuntimeRemapper, RespectsMigrationBudget) {
  const auto cfg = small_workload();
  const auto g0 = apps::build_phased_clusters(cfg, 0);
  const auto arch = arch_for(g0);
  RemapConfig remap;
  remap.max_migrations_per_epoch = 4;
  RuntimeRemapper remapper(arch, offline_partition(g0, arch), remap);
  std::uint64_t total = 0;
  for (std::uint32_t phase = 1; phase <= 3; ++phase) {
    const auto report =
        remapper.observe_phase(apps::build_phased_clusters(cfg, phase));
    EXPECT_LE(report.migrations, 4u);
    total += report.migrations;
  }
  EXPECT_EQ(remapper.total_migrations(), total);
  EXPECT_EQ(remapper.epochs_observed(), 3u);
}

TEST(RuntimeRemapper, ZeroBudgetChangesNothing) {
  const auto cfg = small_workload();
  const auto g0 = apps::build_phased_clusters(cfg, 0);
  const auto arch = arch_for(g0);
  const auto initial = offline_partition(g0, arch);
  RemapConfig remap;
  remap.max_migrations_per_epoch = 0;
  RuntimeRemapper remapper(arch, initial, remap);
  const auto report =
      remapper.observe_phase(apps::build_phased_clusters(cfg, 2));
  EXPECT_EQ(report.migrations, 0u);
  EXPECT_EQ(report.cost_before, report.cost_after);
  EXPECT_EQ(remapper.partition(), initial);
}

TEST(RuntimeRemapper, BeatsStaticMappingOnShiftedPhase) {
  // After the hot window rotates far from phase 0, remapping must recover a
  // meaningfully better cost than the stale static partition.
  const auto cfg = small_workload();
  const auto g0 = apps::build_phased_clusters(cfg, 0);
  const auto arch = arch_for(g0);
  const auto initial = offline_partition(g0, arch);

  const auto g3 = apps::build_phased_clusters(cfg, 3);
  const CostModel cost(g3);
  const std::uint64_t static_cost = cost.multicast_packet_count(initial);

  RemapConfig remap;
  remap.max_migrations_per_epoch = 32;
  RuntimeRemapper remapper(arch, initial, remap);
  const auto report = remapper.observe_phase(g3);
  EXPECT_EQ(report.cost_before, static_cost);
  EXPECT_LT(report.cost_after, static_cost);
}

TEST(RuntimeRemapper, ReportImprovementFractionConsistent) {
  RemapEpochReport r;
  r.cost_before = 200;
  r.cost_after = 150;
  EXPECT_NEAR(r.improvement_fraction(), 0.25, 1e-12);
  r.cost_before = 0;
  EXPECT_EQ(r.improvement_fraction(), 0.0);
}

}  // namespace
}  // namespace snnmap::core
