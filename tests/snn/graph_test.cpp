#include "snn/graph.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "snn/network.hpp"
#include "snn/simulator.hpp"

namespace snnmap::snn {
namespace {

SnnGraph tiny_graph() {
  std::vector<GraphEdge> edges{{0, 1, 1.0F}, {0, 2, 0.5F}, {1, 2, -1.0F}};
  std::vector<SpikeTrain> trains{{1.0, 2.0, 3.0}, {5.0}, {}};
  return SnnGraph::from_parts(3, std::move(edges), std::move(trains), 100.0);
}

TEST(SnnGraph, BasicAccessors) {
  const auto g = tiny_graph();
  EXPECT_EQ(g.neuron_count(), 3u);
  EXPECT_EQ(g.edge_count(), 3u);
  EXPECT_EQ(g.total_spikes(), 4u);
  EXPECT_EQ(g.spike_count(0), 3u);
  EXPECT_EQ(g.spike_count(2), 0u);
  EXPECT_DOUBLE_EQ(g.duration_ms(), 100.0);
}

TEST(SnnGraph, FanoutIndex) {
  const auto g = tiny_graph();
  EXPECT_EQ(g.fanout_degree(0), 2u);
  EXPECT_EQ(g.fanout_degree(1), 1u);
  EXPECT_EQ(g.fanout_degree(2), 0u);
  const auto& offsets = g.fanout_offsets();
  const auto& targets = g.fanout_targets();
  EXPECT_EQ(targets[offsets[0]], 1u);
  EXPECT_EQ(targets[offsets[0] + 1], 2u);
}

TEST(SnnGraph, MeanRate) {
  const auto g = tiny_graph();
  // 4 spikes / 3 neurons / 0.1 s = 13.33 Hz
  EXPECT_NEAR(g.mean_rate_hz(), 13.333, 0.01);
}

TEST(SnnGraph, RejectsBadEdges) {
  std::vector<GraphEdge> edges{{0, 9, 1.0F}};
  std::vector<SpikeTrain> trains{{}, {}};
  EXPECT_THROW(
      SnnGraph::from_parts(2, std::move(edges), std::move(trains), 10.0),
      std::invalid_argument);
}

TEST(SnnGraph, RejectsUnsortedTrains) {
  std::vector<GraphEdge> edges;
  std::vector<SpikeTrain> trains{{5.0, 1.0}};
  EXPECT_THROW(
      SnnGraph::from_parts(1, std::move(edges), std::move(trains), 10.0),
      std::invalid_argument);
}

TEST(SnnGraph, RejectsTrainCountMismatch) {
  EXPECT_THROW(SnnGraph::from_parts(3, {}, {{}, {}}, 10.0),
               std::invalid_argument);
}

TEST(SnnGraph, RejectsMalformedGroups) {
  EXPECT_THROW(
      SnnGraph::from_parts(2, {}, {{}, {}}, 10.0, {"a"}, {0, 5}),
      std::invalid_argument);
}

TEST(SnnGraph, FromSimulationCollapsesParallelEdges) {
  Network net;
  net.add_lif_group("a", 2);
  net.add_synapse(0, 1, 1.0);
  net.add_synapse(0, 1, 2.0);  // parallel synapse
  SimulationConfig cfg;
  cfg.duration_ms = 10.0;
  Simulator sim(net, cfg);
  const auto g = SnnGraph::from_simulation(net, sim.run());
  ASSERT_EQ(g.edge_count(), 1u);
  EXPECT_FLOAT_EQ(g.edges()[0].weight, 3.0F);  // weights summed
}

TEST(SnnGraph, FromSimulationKeepsGroupAnnotations) {
  Network net;
  net.add_poisson_group("in", 3, 10.0);
  net.add_lif_group("out", 2);
  SimulationConfig cfg;
  cfg.duration_ms = 50.0;
  Simulator sim(net, cfg);
  const auto g = SnnGraph::from_simulation(net, sim.run());
  ASSERT_EQ(g.group_names().size(), 2u);
  EXPECT_EQ(g.group_names()[0], "in");
  EXPECT_EQ(g.group_first()[1], 3u);
  EXPECT_EQ(g.group_first()[2], 5u);
}

TEST(SnnGraph, SaveLoadRoundTrip) {
  const auto g = tiny_graph();
  std::stringstream stream;
  g.save(stream);
  const auto loaded = SnnGraph::load(stream);
  EXPECT_EQ(loaded.neuron_count(), g.neuron_count());
  EXPECT_EQ(loaded.edge_count(), g.edge_count());
  EXPECT_EQ(loaded.total_spikes(), g.total_spikes());
  EXPECT_EQ(loaded.spike_train(0), g.spike_train(0));
  EXPECT_DOUBLE_EQ(loaded.duration_ms(), g.duration_ms());
  for (std::size_t i = 0; i < g.edge_count(); ++i) {
    EXPECT_EQ(loaded.edges()[i].pre, g.edges()[i].pre);
    EXPECT_EQ(loaded.edges()[i].post, g.edges()[i].post);
    EXPECT_FLOAT_EQ(loaded.edges()[i].weight, g.edges()[i].weight);
  }
}

TEST(SnnGraph, LoadRejectsBadHeader) {
  std::stringstream stream("bogus 7\n");
  EXPECT_THROW(SnnGraph::load(stream), std::runtime_error);
}

TEST(SnnGraph, LoadRejectsTruncated) {
  std::stringstream stream("snngraph 1\n3 2 100\n0\n0 1 1.0\n");
  EXPECT_THROW(SnnGraph::load(stream), std::runtime_error);
}

}  // namespace
}  // namespace snnmap::snn
