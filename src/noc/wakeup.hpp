// Wake-up event queue for the event-driven NoC engine (NocEngine::kEvent).
//
// The cycle-accurate loop pays one simulate_cycle() per busy cycle even when
// nothing in the fabric can move — every in-flight flit parked on its
// ready_cycle (off-chip SerDes latency), or every ready head blocked by
// backpressure.  The event engine detects such fixed-point cycles and jumps
// now_ directly to the earliest cycle at which the fabric state can change:
// the soonest parked-flit wake-up registered here, the next traffic
// emission, or the next fault-timeline transition (netsim-style event
// scheduling, collapsed to cycle stamps because the simulator re-arbitrates
// the whole active worklist at every productive cycle anyway).
//
// Entries may be stale: a parked flit can be purged by a dying router or
// pruned as unroutable before its wake-up arrives.  Staleness is harmless —
// an early wake-up costs one progress-free probe cycle, after which the
// engine consults the queue again — so entries are discarded lazily instead
// of being tracked per flit.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

namespace snnmap::noc {

/// Min-heap of future wake-up cycles with lazy staleness removal.  Pushes
/// are O(log n); consulting the queue discards every entry behind the
/// requested cycle.  Amortized-O(1) pruning keeps the heap bounded by the
/// number of still-future entries even on long runs that never stall (and
/// therefore never consult it).
class WakeupQueue {
 public:
  /// Returned by next_at_or_after() when nothing future is scheduled.
  static constexpr std::uint64_t kNever = static_cast<std::uint64_t>(-1);

  void clear() noexcept {
    heap_.clear();
    prune_trigger_ = kMinPruneTrigger;
  }

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }

  /// Registers a possible state change at `cycle`.  `now` bounds the
  /// amortized prune: once the heap outgrows its trigger, every entry
  /// already at or behind `now` (stale by definition — it can never justify
  /// a future skip) is dropped in one O(n) pass.
  void schedule(std::uint64_t cycle, std::uint64_t now) {
    if (heap_.size() >= prune_trigger_) {
      std::erase_if(heap_, [now](std::uint64_t c) { return c <= now; });
      std::make_heap(heap_.begin(), heap_.end(), std::greater<>{});
      prune_trigger_ = std::max(kMinPruneTrigger, heap_.size() * 2);
    }
    heap_.push_back(cycle);
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  }

  /// Earliest scheduled cycle >= `cycle`, discarding every earlier (stale)
  /// entry on the way; kNever when none remain.  Entries equal to `cycle`
  /// are *kept and returned*: a flit becoming ready at the current cycle is
  /// the very next chance of progress, not history.
  std::uint64_t next_at_or_after(std::uint64_t cycle) noexcept {
    while (!heap_.empty() && heap_.front() < cycle) {
      std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
      heap_.pop_back();
    }
    return heap_.empty() ? kNever : heap_.front();
  }

 private:
  static constexpr std::size_t kMinPruneTrigger = 64;

  std::vector<std::uint64_t> heap_;  // binary min-heap of cycle stamps
  std::size_t prune_trigger_ = kMinPruneTrigger;
};

}  // namespace snnmap::noc
