#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/batch_eval.hpp"
#include "core/cost.hpp"
#include "snn/graph.hpp"
#include "util/rng.hpp"

namespace snnmap::core {
namespace {

/// Random sparse graph with varied spike counts (cost structure exercised
/// beyond the trivial all-equal case).
snn::SnnGraph random_graph(std::uint32_t neurons, std::uint32_t edges,
                           std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<snn::GraphEdge> graph_edges;
  graph_edges.reserve(edges);
  for (std::uint32_t e = 0; e < edges; ++e) {
    const auto pre = static_cast<std::uint32_t>(rng.below(neurons));
    auto post = static_cast<std::uint32_t>(rng.below(neurons));
    if (post == pre) post = (post + 1) % neurons;
    graph_edges.push_back({pre, post, 1.0F});
  }
  std::vector<snn::SpikeTrain> trains;
  trains.reserve(neurons);
  for (std::uint32_t i = 0; i < neurons; ++i) {
    snn::SpikeTrain train;
    const auto spikes = rng.below(6);
    for (std::uint64_t s = 0; s < spikes; ++s) {
      train.push_back(static_cast<double>(s) + 0.5);
    }
    trains.push_back(std::move(train));
  }
  return snn::SnnGraph::from_parts(neurons, std::move(graph_edges),
                                   std::move(trains), 10.0);
}

std::vector<std::vector<CrossbarId>> random_assignments(
    std::uint32_t neurons, std::uint32_t crossbars, std::size_t count,
    std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<CrossbarId>> out(count);
  for (auto& assignment : out) {
    assignment.resize(neurons);
    for (auto& k : assignment) {
      k = static_cast<CrossbarId>(rng.below(crossbars));
    }
  }
  return out;
}

TEST(BatchEvaluator, MatchesSerialCostModel) {
  const auto graph = random_graph(40, 200, 11);
  const CostModel serial(graph);
  BatchEvaluator evaluator(graph, 4);
  const auto batch = random_assignments(40, 5, 33, 12);

  std::vector<std::uint64_t> costs;
  for (const auto objective :
       {Objective::kAerPackets, Objective::kCutSpikes}) {
    evaluator.evaluate(batch, objective, costs);
    ASSERT_EQ(costs.size(), batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(costs[i], serial.objective_cost(batch[i], objective))
          << "candidate " << i << " objective " << to_string(objective);
    }
  }
}

TEST(BatchEvaluator, RepeatedRunsAreBitIdentical) {
  const auto graph = random_graph(30, 120, 21);
  BatchEvaluator parallel(graph, 4);
  BatchEvaluator serial(graph, 1);
  const auto batch = random_assignments(30, 4, 64, 22);

  std::vector<std::uint64_t> a, b, c;
  parallel.evaluate(batch, Objective::kAerPackets, a);
  parallel.evaluate(batch, Objective::kAerPackets, b);
  serial.evaluate(batch, Objective::kAerPackets, c);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

TEST(BatchEvaluator, IndexedViewMatchesContainerOverload) {
  const auto graph = random_graph(25, 80, 31);
  BatchEvaluator evaluator(graph, 3);
  const auto batch = random_assignments(25, 4, 17, 32);

  std::vector<std::uint64_t> via_container, via_view;
  evaluator.evaluate(batch, Objective::kAerPackets, via_container);
  evaluator.evaluate(
      batch.size(),
      [&batch](std::size_t i) -> const std::vector<CrossbarId>& {
        return batch[i];
      },
      Objective::kAerPackets, via_view);
  EXPECT_EQ(via_container, via_view);
}

TEST(BatchEvaluator, EmptyBatchYieldsEmptyCosts) {
  const auto graph = random_graph(10, 20, 41);
  BatchEvaluator evaluator(graph, 2);
  std::vector<std::uint64_t> costs{1, 2, 3};
  evaluator.evaluate({}, Objective::kAerPackets, costs);
  EXPECT_TRUE(costs.empty());
}

TEST(BatchEvaluator, ExposesWorkerLocalModels) {
  const auto graph = random_graph(10, 20, 51);
  BatchEvaluator evaluator(graph, 2);
  EXPECT_EQ(evaluator.thread_count(), 2u);
  const auto batch = random_assignments(10, 3, 1, 52);
  EXPECT_EQ(evaluator.model(0).objective_cost(batch[0], Objective::kCutSpikes),
            evaluator.model(1).objective_cost(batch[0],
                                              Objective::kCutSpikes));
}

TEST(BatchEvaluator, ZeroThreadsResolvesToHardwareConcurrency) {
  const auto graph = random_graph(10, 20, 61);
  BatchEvaluator evaluator(graph, 0);
  EXPECT_GE(evaluator.thread_count(), 1u);
}

namespace {

/// A small deterministic all-to-all scenario batch over mixed topologies.
std::vector<NocScenario> noc_scenarios() {
  std::vector<NocScenario> scenarios;
  const auto traffic = [](std::uint64_t seed, std::uint32_t tiles) {
    util::Rng rng(seed);
    std::vector<noc::SpikePacketEvent> t;
    for (int i = 0; i < 400; ++i) {
      noc::SpikePacketEvent ev;
      ev.emit_cycle = static_cast<std::uint64_t>(i / 4);
      ev.emit_step = ev.emit_cycle / 8;
      ev.source_neuron = static_cast<std::uint32_t>(rng.below(64));
      ev.source_tile = static_cast<noc::TileId>(rng.below(tiles));
      const auto dest = static_cast<noc::TileId>(rng.below(tiles));
      if (dest == ev.source_tile) continue;
      ev.dest_tiles = {dest};
      t.push_back(std::move(ev));
    }
    return t;
  };
  scenarios.push_back({noc::Topology::mesh(3, 3), noc::NocConfig{},
                       traffic(11, 9)});
  scenarios.push_back({noc::Topology::tree(8, 4), noc::NocConfig{},
                       traffic(22, 8)});
  noc::NocConfig shallow;
  shallow.buffer_depth = 1;
  // A shallow ring under this load wedges on its cyclic channel dependency;
  // keep the guard small so the batch exercises the drained=false path
  // without simulating millions of stalled cycles.
  shallow.max_cycles = 20'000;
  scenarios.push_back({noc::Topology::ring(6), shallow, traffic(33, 6)});
  return scenarios;
}

}  // namespace

TEST(BatchNocEvaluator, ParallelMatchesSerialBitForBit) {
  auto serial_results = BatchNocEvaluator(1).run_all(noc_scenarios());
  auto parallel_results = BatchNocEvaluator(4).run_all(noc_scenarios());
  ASSERT_EQ(serial_results.size(), parallel_results.size());
  for (std::size_t i = 0; i < serial_results.size(); ++i) {
    const auto& s = serial_results[i];
    const auto& p = parallel_results[i];
    EXPECT_EQ(s.stats.copies_delivered, p.stats.copies_delivered);
    EXPECT_EQ(s.stats.duration_cycles, p.stats.duration_cycles);
    EXPECT_EQ(s.stats.link_hops, p.stats.link_hops);
    EXPECT_DOUBLE_EQ(s.stats.global_energy_pj, p.stats.global_energy_pj);
    EXPECT_EQ(s.stats.link_flits, p.stats.link_flits);
    EXPECT_DOUBLE_EQ(s.snn.isi_distortion_avg_cycles,
                     p.snn.isi_distortion_avg_cycles);
    ASSERT_EQ(s.delivered.size(), p.delivered.size());
    for (std::size_t k = 0; k < s.delivered.size(); ++k) {
      EXPECT_EQ(s.delivered[k].dest_tile, p.delivered[k].dest_tile);
      EXPECT_EQ(s.delivered[k].recv_cycle, p.delivered[k].recv_cycle);
      EXPECT_EQ(s.delivered[k].sequence, p.delivered[k].sequence);
    }
  }
}

TEST(BatchNocEvaluator, EmptyBatchAndZeroThreadsAreFine) {
  BatchNocEvaluator evaluator(0);
  EXPECT_GE(evaluator.thread_count(), 1u);
  EXPECT_TRUE(evaluator.run_all({}).empty());
}

TEST(BatchNocEvaluator, StreamingScenariosSkipTheLog) {
  auto scenarios = noc_scenarios();
  for (auto& s : scenarios) s.config.collect_delivered = false;
  const auto results = BatchNocEvaluator(2).run_all(std::move(scenarios));
  for (const auto& r : results) {
    EXPECT_TRUE(r.delivered.empty());
    EXPECT_GT(r.stats.copies_delivered, 0u);
  }
}

TEST(BatchEvaluator, ClampsPoolToMaxParallelism) {
  const auto graph = random_graph(10, 20, 71);
  BatchEvaluator evaluator(graph, 8, 3);
  EXPECT_EQ(evaluator.thread_count(), 3u);
  // max_parallelism is a sizing hint, not a hard limit: a larger batch is
  // still evaluated correctly, just with fewer workers.
  const CostModel serial(graph);
  const auto batch = random_assignments(10, 3, 10, 72);
  std::vector<std::uint64_t> costs;
  evaluator.evaluate(batch, Objective::kAerPackets, costs);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(costs[i], serial.objective_cost(batch[i],
                                              Objective::kAerPackets));
  }
}

}  // namespace
}  // namespace snnmap::core
