#include "apps/heartbeat.hpp"

#include <algorithm>
#include <cmath>

#include "snn/network.hpp"
#include "snn/simulator.hpp"

namespace snnmap::apps {
namespace {

/// One PQRST complex sampled at offset `t` ms from the R peak; amplitude in
/// [-0.25, 1].  Gaussian bumps for P/Q/R/S/T (simplified McSharry model).
double pqrst(double t_ms) {
  struct Wave {
    double center_ms, width_ms, amplitude;
  };
  static constexpr Wave kWaves[] = {
      {-180.0, 25.0, 0.15},  // P
      {-25.0, 10.0, -0.12},  // Q
      {0.0, 12.0, 1.0},      // R
      {25.0, 10.0, -0.22},   // S
      {160.0, 40.0, 0.30},   // T
  };
  double v = 0.0;
  for (const Wave& w : kWaves) {
    const double d = (t_ms - w.center_ms) / w.width_ms;
    v += w.amplitude * std::exp(-0.5 * d * d);
  }
  return v;
}

}  // namespace

std::vector<double> make_ecg(const HeartbeatConfig& config,
                             std::vector<double>* r_peaks_ms) {
  util::Rng rng(config.seed ^ 0xEC6);
  // Generate R-peak times with jittered RR intervals.
  std::vector<double> peaks;
  double t = config.mean_rr_ms * 0.5;
  while (t < config.duration_ms + config.mean_rr_ms) {
    peaks.push_back(t);
    t += config.mean_rr_ms + rng.normal(0.0, config.rr_jitter_ms);
  }
  const auto samples = static_cast<std::size_t>(config.duration_ms);
  std::vector<double> ecg(samples, 0.0);
  for (std::size_t i = 0; i < samples; ++i) {
    const double now = static_cast<double>(i);
    for (const double peak : peaks) {
      if (std::abs(now - peak) < 400.0) ecg[i] += pqrst(now - peak);
    }
    ecg[i] += rng.normal(0.0, 0.02);          // measurement noise
    ecg[i] += 0.05 * std::sin(now / 1800.0);  // baseline wander
  }
  if (r_peaks_ms) {
    r_peaks_ms->clear();
    for (const double peak : peaks) {
      if (peak < config.duration_ms) r_peaks_ms->push_back(peak);
    }
  }
  return ecg;
}

std::vector<snn::SpikeTrain> encode_ecg(const std::vector<double>& ecg,
                                        std::uint32_t channels, double delta) {
  // Each channel runs the Fig. 3 threshold automaton with a phase-shifted
  // initial band, so different channels fire on different signal excursions.
  std::vector<snn::SpikeTrain> trains(channels);
  for (std::uint32_t ch = 0; ch < channels; ++ch) {
    const double phase =
        delta * static_cast<double>(ch) / static_cast<double>(channels);
    // Band recentered on the signal after each crossing: the next spike
    // requires a full-delta excursion from the *current* level, which keeps
    // i.i.d. sensor noise from chattering the encoder.
    double center = phase;
    for (std::size_t i = 0; i < ecg.size(); ++i) {
      const double v = ecg[i];
      if (v > center + delta || v < center - delta) {
        trains[ch].push_back(static_cast<double>(i));
        center = v;
      }
    }
  }
  return trains;
}

snn::Network build_heartbeat_network(const HeartbeatConfig& config) {
  util::Rng rng(config.seed);
  const auto ecg = make_ecg(config);
  const auto encoded =
      encode_ecg(ecg, config.input_channels, config.encoder_delta);

  snn::Network net;
  // Input channels are realized as Poisson groups with a deterministic
  // "rate spike" exactly at encoder crossings: rate_fn returns a rate high
  // enough to guarantee a spike in that millisecond and 0 elsewhere.  This
  // keeps the temporal code of the encoder intact inside the clock-driven
  // simulator.
  const auto input =
      net.add_poisson_group("ecg_in", config.input_channels, 0.0);
  // Build a per-channel ms-resolution spike mask.
  const auto samples = static_cast<std::size_t>(config.duration_ms);
  std::vector<std::vector<char>> mask(config.input_channels,
                                      std::vector<char>(samples + 1, 0));
  for (std::uint32_t ch = 0; ch < config.input_channels; ++ch) {
    for (const double t : encoded[ch]) {
      const auto idx = static_cast<std::size_t>(t);
      if (idx <= samples) mask[ch][idx] = 1;
    }
  }
  net.set_rate_function(input, [mask](std::uint32_t local, double t_ms) {
    const auto idx = static_cast<std::size_t>(t_ms);
    if (idx < mask[local].size() && mask[local][idx]) {
      return 1.0e6;  // P(spike) = rate/1000 * dt clamps to 1 -> certain spike
    }
    return 0.0;
  });

  // Liquid: 80% excitatory RS, 20% inhibitory FS, sparse recurrent.
  const std::uint32_t n_exc =
      static_cast<std::uint32_t>(config.liquid_size * 0.8);
  const std::uint32_t n_inh = config.liquid_size - n_exc;
  const auto liq_exc = net.add_izhikevich_group(
      "liquid_exc", n_exc, snn::IzhikevichParams::regular_spiking());
  const auto liq_inh = net.add_izhikevich_group(
      "liquid_inh", n_inh, snn::IzhikevichParams::fast_spiking());
  const auto readout = net.add_izhikevich_group(
      "readout", config.readout_size,
      snn::IzhikevichParams::regular_spiking());

  net.connect_random(input, liq_exc, 0.8,
                     snn::WeightSpec::uniform(22.0, 34.0), rng);
  net.connect_random(input, liq_inh, 0.3, snn::WeightSpec::uniform(8.0, 14.0),
                     rng);
  // Weak recurrence + strong inhibition: liquid activity must die out
  // between beats so the readout bursts are beat-locked.
  net.connect_random(liq_exc, liq_exc, 0.15,
                     snn::WeightSpec::uniform(1.0, 3.0), rng);
  net.connect_random(liq_exc, liq_inh, 0.25,
                     snn::WeightSpec::uniform(2.0, 5.0), rng);
  net.connect_random(liq_inh, liq_exc, 0.35,
                     snn::WeightSpec::uniform(-12.0, -6.0), rng);
  net.connect_random(liq_inh, liq_inh, 0.1,
                     snn::WeightSpec::uniform(-4.0, -2.0), rng);
  // Readout fires only on coincident liquid bursts (a lone liquid spike is
  // far subthreshold).
  net.connect_random(liq_exc, readout, 0.6,
                     snn::WeightSpec::uniform(3.0, 5.0), rng);
  return net;
}

snn::SimulationConfig heartbeat_sim_config(const HeartbeatConfig& config) {
  snn::SimulationConfig sim_config;
  sim_config.seed = config.seed;
  sim_config.duration_ms = config.duration_ms;
  return sim_config;
}

snn::SnnGraph build_heartbeat(const HeartbeatConfig& config,
                              HeartbeatGroundTruth* truth) {
  snn::Network net = build_heartbeat_network(config);
  snn::Simulator sim(net, heartbeat_sim_config(config));
  auto result = sim.run();

  if (truth) {
    // make_ecg is a pure function of the config, so recomputing it here
    // yields the exact peak times the network's encoder saw.
    std::vector<double> r_peaks;
    make_ecg(config, &r_peaks);
    truth->r_peak_times_ms = r_peaks;
    double rr_sum = 0.0;
    for (std::size_t i = 1; i < r_peaks.size(); ++i) {
      rr_sum += r_peaks[i] - r_peaks[i - 1];
    }
    truth->mean_rr_ms =
        r_peaks.size() > 1 ? rr_sum / static_cast<double>(r_peaks.size() - 1)
                           : config.mean_rr_ms;
    const auto readout = net.find_group("readout");
    truth->readout_first = net.group(readout).first;
    truth->readout_count = net.group(readout).size;
  }
  return snn::SnnGraph::from_simulation(net, result);
}

double estimate_mean_rr_ms(const snn::SpikeTrain& merged_readout,
                           double gap_ms) {
  if (merged_readout.size() < 2) return 0.0;
  // Burst starts = spikes preceded by a gap > gap_ms.
  std::vector<double> burst_starts{merged_readout.front()};
  for (std::size_t i = 1; i < merged_readout.size(); ++i) {
    if (merged_readout[i] - merged_readout[i - 1] > gap_ms) {
      burst_starts.push_back(merged_readout[i]);
    }
  }
  if (burst_starts.size() < 2) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 1; i < burst_starts.size(); ++i) {
    sum += burst_starts[i] - burst_starts[i - 1];
  }
  return sum / static_cast<double>(burst_starts.size() - 1);
}

double heart_rate_error_percent(double estimated_rr_ms, double true_rr_ms) {
  if (true_rr_ms <= 0.0 || estimated_rr_ms <= 0.0) return 100.0;
  // Error in rate space (bpm), symmetric in the ratio.
  const double est_bpm = 60000.0 / estimated_rr_ms;
  const double true_bpm = 60000.0 / true_rr_ms;
  return std::abs(est_bpm - true_bpm) / true_bpm * 100.0;
}

}  // namespace snnmap::apps
