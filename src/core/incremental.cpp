#include "core/incremental.hpp"

#include <stdexcept>

namespace snnmap::core {

IncrementalAerCost::IncrementalAerCost(const snn::SnnGraph& graph,
                                       std::vector<CrossbarId> assignment,
                                       std::uint32_t crossbar_count)
    : graph_(graph),
      assignment_(std::move(assignment)),
      crossbar_count_(crossbar_count) {
  const std::uint32_t n = graph_.neuron_count();
  if (assignment_.size() != n) {
    throw std::invalid_argument("IncrementalAerCost: assignment size");
  }
  for (const CrossbarId c : assignment_) {
    if (c == kUnassigned || c >= crossbar_count_) {
      throw std::invalid_argument(
          "IncrementalAerCost: incomplete or out-of-range assignment");
    }
  }
  const auto& offsets = graph_.fanout_offsets();
  const auto& targets = graph_.fanout_targets();

  target_count_.assign(static_cast<std::size_t>(n) * crossbar_count_, 0);
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t k = offsets[u]; k < offsets[u + 1]; ++k) {
      ++target_count_[static_cast<std::size_t>(u) * crossbar_count_ +
                      assignment_[targets[k]]];
    }
  }

  // In-adjacency over the same distinct pairs (invert the fanout CSR).
  in_offsets_.assign(n + 1, 0);
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t k = offsets[u]; k < offsets[u + 1]; ++k) {
      ++in_offsets_[targets[k] + 1];
    }
  }
  for (std::size_t i = 1; i < in_offsets_.size(); ++i) {
    in_offsets_[i] += in_offsets_[i - 1];
  }
  in_sources_.resize(in_offsets_.back());
  std::vector<std::uint32_t> cursor(in_offsets_.begin(),
                                    in_offsets_.end() - 1);
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t k = offsets[u]; k < offsets[u + 1]; ++k) {
      in_sources_[cursor[targets[k]]++] = u;
    }
  }

  remotes_.resize(n);
  occupancy_.assign(crossbar_count_, 0);
  cost_ = 0;
  for (std::uint32_t u = 0; u < n; ++u) {
    remotes_[u] = remotes_with_own(u, assignment_[u]);
    cost_ += graph_.spike_count(u) * remotes_[u];
    ++occupancy_[assignment_[u]];
  }
}

std::uint32_t IncrementalAerCost::remotes_with_own(
    std::uint32_t neuron, CrossbarId own) const noexcept {
  std::uint32_t count = 0;
  const std::size_t base =
      static_cast<std::size_t>(neuron) * crossbar_count_;
  for (CrossbarId c = 0; c < crossbar_count_; ++c) {
    if (c != own && target_count_[base + c] > 0) ++count;
  }
  return count;
}

std::int64_t IncrementalAerCost::move_delta(std::uint32_t neuron,
                                            CrossbarId to) const {
  const CrossbarId from = assignment_[neuron];
  if (to == from) return 0;
  std::int64_t delta = 0;

  // 1. The neuron's own packet term: which crossbar counts as local flips.
  const std::size_t base =
      static_cast<std::size_t>(neuron) * crossbar_count_;
  std::int64_t own_change = 0;
  if (target_count_[base + from] > 0) ++own_change;  // 'from' becomes remote
  if (target_count_[base + to] > 0) --own_change;    // 'to' becomes local
  delta += static_cast<std::int64_t>(graph_.spike_count(neuron)) * own_change;

  // 2. Every in-neighbor u sees one target leave 'from' and enter 'to'.
  for (std::uint32_t k = in_offsets_[neuron]; k < in_offsets_[neuron + 1];
       ++k) {
    const std::uint32_t u = in_sources_[k];
    if (u == neuron) continue;  // self-loop handled by the own term
    const CrossbarId own_u = assignment_[u];
    const std::size_t ubase =
        static_cast<std::size_t>(u) * crossbar_count_;
    std::int64_t change = 0;
    if (target_count_[ubase + from] == 1 && from != own_u) --change;
    if (target_count_[ubase + to] == 0 && to != own_u) ++change;
    delta += static_cast<std::int64_t>(graph_.spike_count(u)) * change;
  }
  return delta;
}

void IncrementalAerCost::apply_move(std::uint32_t neuron, CrossbarId to) {
  const CrossbarId from = assignment_[neuron];
  if (to == from) return;
  cost_ = static_cast<std::uint64_t>(static_cast<std::int64_t>(cost_) +
                                     move_delta(neuron, to));

  // Update in-neighbors' target counts and remote tallies.
  for (std::uint32_t k = in_offsets_[neuron]; k < in_offsets_[neuron + 1];
       ++k) {
    const std::uint32_t u = in_sources_[k];
    const std::size_t ubase =
        static_cast<std::size_t>(u) * crossbar_count_;
    const CrossbarId own_u = u == neuron ? to : assignment_[u];
    if (--target_count_[ubase + from] == 0 && from != own_u &&
        u != neuron) {
      --remotes_[u];
    }
    if (target_count_[ubase + to]++ == 0 && to != own_u && u != neuron) {
      ++remotes_[u];
    }
  }
  --occupancy_[from];
  ++occupancy_[to];
  assignment_[neuron] = to;
  remotes_[neuron] = remotes_with_own(neuron, to);
}

std::uint64_t IncrementalAerCost::swap_refine(std::uint64_t attempts,
                                              util::Rng& rng) {
  const std::uint32_t n = graph_.neuron_count();
  if (n < 2 || crossbar_count_ < 2) return 0;
  std::uint64_t kept = 0;
  for (std::uint64_t t = 0; t < attempts; ++t) {
    const auto a = static_cast<std::uint32_t>(rng.below(n));
    const auto b = static_cast<std::uint32_t>(rng.below(n));
    const CrossbarId ca = assignment_[a];
    const CrossbarId cb = assignment_[b];
    if (ca == cb) continue;
    const std::int64_t d1 = move_delta(a, cb);
    apply_move(a, cb);
    const std::int64_t d2 = move_delta(b, ca);
    if (d1 + d2 < 0) {
      apply_move(b, ca);
      ++kept;
    } else {
      apply_move(a, ca);  // revert
    }
  }
  return kept;
}

std::uint64_t IncrementalAerCost::greedy_refine(std::uint32_t capacity,
                                                std::uint32_t max_sweeps) {
  std::uint64_t applied = 0;
  for (std::uint32_t sweep = 0; sweep < max_sweeps; ++sweep) {
    bool changed = false;
    for (std::uint32_t n = 0; n < graph_.neuron_count(); ++n) {
      const CrossbarId from = assignment_[n];
      CrossbarId best = from;
      std::int64_t best_delta = 0;
      for (CrossbarId c = 0; c < crossbar_count_; ++c) {
        if (c == from || occupancy_[c] >= capacity) continue;
        const std::int64_t d = move_delta(n, c);
        if (d < best_delta) {
          best_delta = d;
          best = c;
        }
      }
      if (best != from) {
        apply_move(n, best);
        ++applied;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return applied;
}

}  // namespace snnmap::core
