#!/usr/bin/env python3
"""Self-tests for snnmap-lint: every rule must fire on its seeded-violation
fixture (exact line accounting, so a silently dead rule fails here) and stay
quiet on the clean fixture that exercises every waiver/gating shape.

Run directly or via CTest (`lint.selftest`).  Exit 0 on success.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

HERE = pathlib.Path(__file__).resolve().parent
LINT = HERE / "snnmap_lint.py"
CASES = HERE / "tests" / "cases"

# case directory -> (rules to run, expected exit, expected finding anchors).
# Anchors are "path:line" prefixes that must each appear exactly once; the
# total finding count must equal the anchor count.
EXPECTATIONS = {
    "clean": (None, 0, []),
    "nondeterminism_bad": (["nondeterminism"], 1, [
        "src/bad.cpp:3",    # include <random>
        "src/bad.cpp:4",    # include <chrono>
        "src/bad.cpp:9",    # random_device
        "src/bad.cpp:10",   # mt19937
        "src/bad.cpp:11",   # uniform_int_distribution
        "src/bad.cpp:16",   # steady_clock
        "src/bad.cpp:21",   # srand
        "src/bad.cpp:22",   # bare waiver without justification
        "src/bad.cpp:23",   # rand() (the bare waiver must not silence it)
        "src/bad.cpp:26",   # getenv
    ]),
    "unordered_bad": (["unordered-iteration"], 1, [
        "src/bad.cpp:8",    # unordered_set declaration
        "src/bad.cpp:9",    # unordered_map declaration
        "src/bad.cpp:11",   # range-for over unordered_set
        "src/bad.cpp:14",   # iterator walk via .begin()
    ]),
    "hoisted_bad": (["hoisted-gate"], 1, [
        "src/bad.cpp:7",    # record gated on the wrong flag
        "src/bad.cpp:9",    # ungated fault-mask consult
    ]),
    "hoisted_good": (["hoisted-gate"], 0, []),
    "ci_sync_bad": (["ci-bench-sync"], 1, [
        "bench/CMakeLists.txt:4",  # beta_benchmarks never asserted
        "scripts/ci.sh:1",         # phantom_benchmarks has no target
    ]),
    "config_bad": (["config-key-coverage"], 1, [
        "src/core/config_io.cpp:8",   # noc.read_only never written back
        "src/core/config_io.cpp:13",  # noc.write_only never read back
        "src/core/config_io.cpp:8",   # noc.read_only missing from test
        "src/core/config_io.cpp:13",  # noc.write_only missing from test
        "src/hw/energy_model.cpp:11",  # energy.uncovered_pj not in test
        "tests/core/config_io_test.cpp:1",  # stale noc.renamed_away
    ]),
}


def run_case(case, rules):
    cmd = [sys.executable, str(LINT), "--repo", str(CASES / case)]
    for rule in rules or []:
        cmd += ["--rule", rule]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    findings = [line for line in proc.stdout.splitlines() if line.strip()]
    return proc.returncode, findings


def main():
    failures = []
    for case, (rules, want_exit, anchors) in sorted(EXPECTATIONS.items()):
        code, findings = run_case(case, rules)
        if code != want_exit:
            failures.append(
                f"{case}: exit {code}, expected {want_exit}; findings:\n  "
                + "\n  ".join(findings))
            continue
        if len(findings) != len(anchors):
            failures.append(
                f"{case}: {len(findings)} findings, expected "
                f"{len(anchors)}:\n  " + "\n  ".join(findings))
            continue
        remaining = list(findings)
        for anchor in anchors:
            hit = next((f for f in remaining if anchor + ":" in f), None)
            if hit is None:
                failures.append(f"{case}: no finding at {anchor}; got:\n  "
                                + "\n  ".join(findings))
                break
            remaining.remove(hit)
        print(f"ok: {case} ({len(anchors)} expected finding(s))")
    if failures:
        print("\nFAIL", file=sys.stderr)
        for failure in failures:
            print(failure, file=sys.stderr)
        return 1
    print("snnmap-lint self-tests passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
