// Determinism regression for the parallel batch-evaluation layer: with a
// fixed seed, every optimizer must produce bit-identical results whether
// fitness evaluation (PSO/GA) or restart chains (SA) run serially or on a
// worker pool.  Guards against evaluation-order nondeterminism sneaking into
// the hot path.
#include <gtest/gtest.h>

#include <vector>

#include "core/annealing.hpp"
#include "core/genetic.hpp"
#include "core/pso.hpp"
#include "snn/graph.hpp"
#include "util/rng.hpp"

namespace snnmap::core {
namespace {

/// Random sparse workload: 48 neurons, mixed spike counts.
snn::SnnGraph workload() {
  util::Rng rng(77);
  std::vector<snn::GraphEdge> edges;
  for (int e = 0; e < 300; ++e) {
    const auto pre = static_cast<std::uint32_t>(rng.below(48));
    auto post = static_cast<std::uint32_t>(rng.below(48));
    if (post == pre) post = (post + 1) % 48;
    edges.push_back({pre, post, 1.0F});
  }
  std::vector<snn::SpikeTrain> trains;
  for (int i = 0; i < 48; ++i) {
    snn::SpikeTrain train;
    const auto spikes = rng.below(5) + 1;
    for (std::uint64_t s = 0; s < spikes; ++s) {
      train.push_back(static_cast<double>(s) + 0.25);
    }
    trains.push_back(std::move(train));
  }
  return snn::SnnGraph::from_parts(48, std::move(edges), std::move(trains),
                                   10.0);
}

hw::Architecture arch_6x10() {
  hw::Architecture arch;
  arch.crossbar_count = 6;
  arch.neurons_per_crossbar = 10;
  return arch;
}

TEST(Determinism, PsoSerialAndParallelMatchBitForBit) {
  const auto graph = workload();
  PsoConfig config;
  config.swarm_size = 12;
  config.iterations = 8;
  config.seed = 5;
  config.track_history = true;

  config.threads = 1;
  const auto serial = PsoPartitioner(graph, arch_6x10(), config).optimize();
  config.threads = 4;
  const auto parallel = PsoPartitioner(graph, arch_6x10(), config).optimize();

  EXPECT_EQ(serial.best, parallel.best);
  EXPECT_EQ(serial.best_cost, parallel.best_cost);
  EXPECT_EQ(serial.iterations_run, parallel.iterations_run);
  EXPECT_EQ(serial.fitness_evaluations, parallel.fitness_evaluations);
  EXPECT_EQ(serial.history, parallel.history);
}

TEST(Determinism, GeneticSerialAndParallelMatchBitForBit) {
  const auto graph = workload();
  GeneticConfig config;
  config.population = 16;
  config.generations = 10;
  config.seed = 9;
  config.track_history = true;

  config.threads = 1;
  const auto serial = genetic_partition(graph, arch_6x10(), config);
  config.threads = 4;
  const auto parallel = genetic_partition(graph, arch_6x10(), config);

  EXPECT_EQ(serial.best, parallel.best);
  EXPECT_EQ(serial.best_cost, parallel.best_cost);
  EXPECT_EQ(serial.generations_run, parallel.generations_run);
  EXPECT_EQ(serial.fitness_evaluations, parallel.fitness_evaluations);
  EXPECT_EQ(serial.history, parallel.history);
}

TEST(Determinism, AnnealingRestartChainsMatchBitForBit) {
  const auto graph = workload();
  AnnealingConfig config;
  config.moves = 4000;
  config.seed = 13;
  config.restarts = 3;

  config.threads = 1;
  const auto serial = annealing_partition(graph, arch_6x10(), config);
  config.threads = 4;
  const auto parallel = annealing_partition(graph, arch_6x10(), config);

  EXPECT_EQ(serial.best, parallel.best);
  EXPECT_EQ(serial.best_cost, parallel.best_cost);
  EXPECT_EQ(serial.best_chain, parallel.best_chain);
  EXPECT_EQ(serial.moves_proposed, parallel.moves_proposed);
  EXPECT_EQ(serial.moves_accepted, parallel.moves_accepted);
}

TEST(Determinism, AnnealingSingleRestartReproducesLegacyChain) {
  // restarts=1 must reuse the base seed verbatim: adding the restart layer
  // cannot silently change existing single-chain results.
  const auto graph = workload();
  AnnealingConfig config;
  config.moves = 4000;
  config.seed = 13;

  config.restarts = 1;
  const auto single = annealing_partition(graph, arch_6x10(), config);
  config.restarts = 3;
  config.threads = 2;
  const auto multi = annealing_partition(graph, arch_6x10(), config);

  // Chain 0 of the multi-restart run is the legacy chain, so the winner can
  // only be at least as good.
  EXPECT_LE(multi.best_cost, single.best_cost);
  if (multi.best_chain == 0) {
    EXPECT_EQ(multi.best, single.best);
    EXPECT_EQ(multi.best_cost, single.best_cost);
  }
}

TEST(Determinism, PsoThreadCountZeroMatchesExplicitCounts) {
  const auto graph = workload();
  PsoConfig config;
  config.swarm_size = 8;
  config.iterations = 5;
  config.seed = 21;

  config.threads = 0;  // auto-resolve to hardware_concurrency()
  const auto auto_resolved =
      PsoPartitioner(graph, arch_6x10(), config).optimize();
  config.threads = 3;
  const auto explicit_three =
      PsoPartitioner(graph, arch_6x10(), config).optimize();

  EXPECT_EQ(auto_resolved.best, explicit_three.best);
  EXPECT_EQ(auto_resolved.best_cost, explicit_three.best_cost);
}

}  // namespace
}  // namespace snnmap::core
