#include "core/pacman.hpp"

#include <stdexcept>

namespace snnmap::core {

Partition pacman_partition(const snn::SnnGraph& graph,
                           const hw::Architecture& arch) {
  if (!arch.fits(graph.neuron_count())) {
    throw std::invalid_argument("pacman_partition: network does not fit (" +
                                std::to_string(graph.neuron_count()) + " > " +
                                std::to_string(arch.capacity()) + " neurons)");
  }
  Partition p(graph.neuron_count(), arch.crossbar_count);
  for (std::uint32_t i = 0; i < graph.neuron_count(); ++i) {
    p.assign(i, i / arch.neurons_per_crossbar);
  }
  return p;
}

}  // namespace snnmap::core
