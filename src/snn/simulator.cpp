#include "snn/simulator.hpp"

#include <cmath>
#include <stdexcept>

#include "snn/poisson.hpp"

namespace snnmap::snn {

double SimulationResult::mean_rate_hz() const noexcept {
  if (spikes.empty() || duration_ms <= 0.0) return 0.0;
  return static_cast<double>(total_spikes) /
         static_cast<double>(spikes.size()) / duration_ms * 1000.0;
}

Simulator::Simulator(Network& network, SimulationConfig config)
    : network_(network), config_(config), rng_(config.seed) {
  if (config_.dt_ms <= 0.0) {
    throw std::invalid_argument("Simulator: dt must be > 0");
  }
  const std::uint32_t n = network_.neuron_count();
  states_.resize(n);
  model_of_.resize(n);
  group_of_.resize(n);
  for (std::size_t g = 0; g < network_.group_count(); ++g) {
    const Group& grp = network_.group(g);
    for (NeuronId id = grp.first; id < grp.last(); ++id) {
      model_of_[id] = grp.model;
      group_of_[id] = static_cast<std::uint32_t>(g);
      states_[id] = initial_state(grp.model, grp.lif, grp.izh);
    }
  }
  const std::size_t ring = static_cast<std::size_t>(network_.max_delay_steps()) + 1;
  pending_.assign(ring, std::vector<double>(n, 0.0));
  external_.assign(n, 0.0);
  if (config_.syn_tau_ms > 0.0) {
    syn_current_.assign(n, 0.0);
    syn_decay_ = std::exp(-config_.dt_ms / config_.syn_tau_ms);
  }
  spikes_.assign(n, {});
  last_spike_ms_.assign(n, -1.0);

  // Fan-in index over plastic synapses only (for potentiation on post spike).
  plastic_fanin_offsets_.assign(n + 1, 0);
  const auto& synapses = network_.synapses();
  for (const auto& s : synapses) {
    if (s.plastic) ++plastic_fanin_offsets_[s.post + 1];
  }
  for (std::size_t i = 1; i < plastic_fanin_offsets_.size(); ++i) {
    plastic_fanin_offsets_[i] += plastic_fanin_offsets_[i - 1];
  }
  plastic_fanin_synapses_.resize(plastic_fanin_offsets_.back());
  std::vector<std::uint32_t> cursor(plastic_fanin_offsets_.begin(),
                                    plastic_fanin_offsets_.end() - 1);
  for (std::uint32_t idx = 0; idx < synapses.size(); ++idx) {
    if (synapses[idx].plastic) {
      plastic_fanin_synapses_[cursor[synapses[idx].post]++] = idx;
    }
  }
}

void Simulator::inject_current(NeuronId neuron, double current) {
  if (neuron >= external_.size()) {
    throw std::out_of_range("Simulator: inject_current neuron out of range");
  }
  external_[neuron] += current;
}

void Simulator::deliver_spike(NeuronId neuron) {
  const auto& offsets = network_.fanout_offsets();
  const auto& order = network_.fanout_synapses();
  const auto& synapses = network_.synapses();
  const std::size_t ring = pending_.size();
  for (std::uint32_t k = offsets[neuron]; k < offsets[neuron + 1]; ++k) {
    const Synapse& s = synapses[order[k]];
    const std::size_t arrive = (slot_ + s.delay_steps) % ring;
    pending_[arrive][s.post] += static_cast<double>(s.weight);
    if (config_.enable_stdp && s.plastic) apply_stdp_on_pre(order[k]);
  }
}

void Simulator::apply_stdp_on_pre(std::uint32_t synapse_index) {
  auto& s = network_.mutable_synapses()[synapse_index];
  const double w = stdp_update_on_pre(config_.stdp,
                                      static_cast<double>(s.weight),
                                      last_spike_ms_[s.post], now_ms_);
  s.weight = static_cast<float>(w);
}

void Simulator::apply_stdp_on_post(NeuronId post) {
  auto& synapses = network_.mutable_synapses();
  for (std::uint32_t k = plastic_fanin_offsets_[post];
       k < plastic_fanin_offsets_[post + 1]; ++k) {
    Synapse& s = synapses[plastic_fanin_synapses_[k]];
    const double w = stdp_update_on_post(config_.stdp,
                                         static_cast<double>(s.weight),
                                         last_spike_ms_[s.pre], now_ms_);
    s.weight = static_cast<float>(w);
  }
}

void Simulator::step() {
  const std::uint32_t n = network_.neuron_count();
  std::vector<double>& arriving = pending_[slot_];

  // Exponential synapses: fold this step's arrivals into a decaying current.
  const bool exponential = !syn_current_.empty();
  if (exponential) {
    for (NeuronId i = 0; i < n; ++i) {
      syn_current_[i] = syn_current_[i] * syn_decay_ + arriving[i];
    }
  }

  for (NeuronId i = 0; i < n; ++i) {
    const Group& grp = network_.group(group_of_[i]);
    bool spiked = false;
    const double input =
        (exponential ? syn_current_[i] : arriving[i]) + external_[i];
    switch (model_of_[i]) {
      case NeuronModel::kPoisson: {
        const double rate =
            grp.rate_fn ? grp.rate_fn(i - grp.first, now_ms_)
                        : grp.poisson_rate_hz;
        spiked = poisson_step_spike(rate, config_.dt_ms, rng_);
        break;
      }
      case NeuronModel::kLif:
        spiked = step_lif(states_[i], grp.lif, input, now_ms_, config_.dt_ms);
        break;
      case NeuronModel::kIzhikevich:
        spiked = step_izhikevich(states_[i], grp.izh, input, config_.dt_ms);
        break;
    }
    if (spiked) {
      spikes_[i].push_back(now_ms_);
      ++total_spikes_;
      last_spike_ms_[i] = now_ms_;
      deliver_spike(i);
      if (config_.enable_stdp) apply_stdp_on_post(i);
    }
  }

  std::fill(arriving.begin(), arriving.end(), 0.0);
  std::fill(external_.begin(), external_.end(), 0.0);
  slot_ = (slot_ + 1) % pending_.size();
  ++step_count_;
  now_ms_ = static_cast<double>(step_count_) * config_.dt_ms;
}

SimulationResult Simulator::run() {
  const auto steps =
      static_cast<std::uint64_t>(config_.duration_ms / config_.dt_ms + 0.5);
  for (std::uint64_t i = 0; i < steps; ++i) step();
  return result();
}

SimulationResult Simulator::result() const {
  SimulationResult r;
  r.spikes = spikes_;
  r.duration_ms = now_ms_;
  r.total_spikes = total_spikes_;
  return r;
}

}  // namespace snnmap::snn
