#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace snnmap::obs {
namespace {

TraceConfig enabled_config(std::uint32_t capacity) {
  TraceConfig c;
  c.enabled = true;
  c.ring_capacity = capacity;
  return c;
}

TEST(TraceConfig, DefaultIsInertAndValid) {
  const TraceConfig c;
  EXPECT_FALSE(c.enabled);
  EXPECT_NO_THROW(c.validate());
}

TEST(TraceConfig, EnabledZeroRingThrows) {
  TraceConfig c;
  c.enabled = true;
  c.ring_capacity = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  // Disabled configs may carry any capacity — they never allocate.
  c.enabled = false;
  EXPECT_NO_THROW(c.validate());
}

TEST(Tracer, DefaultConstructedIsDisabledAndEmpty) {
  const Tracer t;
  EXPECT_FALSE(t.enabled());
  EXPECT_EQ(t.recorded(), 0u);
  EXPECT_EQ(t.evicted(), 0u);
  EXPECT_TRUE(t.events().empty());
}

TEST(Tracer, RecordsInOrderBelowCapacity) {
  Tracer t;
  t.configure(enabled_config(8));
  t.record(5, TraceEventType::kFlitInject, 1, 2, 3);
  t.record(6, TraceEventType::kFlitHop, 4, 5, 6);
  ASSERT_EQ(t.recorded(), 2u);
  EXPECT_EQ(t.evicted(), 0u);
  const std::vector<TraceEvent> events = t.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0], (TraceEvent{5, TraceEventType::kFlitInject, 1, 2, 3}));
  EXPECT_EQ(events[1], (TraceEvent{6, TraceEventType::kFlitHop, 4, 5, 6}));
}

TEST(Tracer, RingEvictsOldestButDigestCoversFullStream) {
  Tracer small;
  small.configure(enabled_config(3));
  Tracer big;
  big.configure(enabled_config(100));
  for (std::uint32_t i = 0; i < 10; ++i) {
    small.record(i, TraceEventType::kFlitHop, i, i + 1, i + 2);
    big.record(i, TraceEventType::kFlitHop, i, i + 1, i + 2);
  }
  EXPECT_EQ(small.recorded(), 10u);
  EXPECT_EQ(small.evicted(), 7u);
  const std::vector<TraceEvent> events = small.events();
  ASSERT_EQ(events.size(), 3u);
  // Oldest-first unwrap: the survivors are the last three records.
  EXPECT_EQ(events[0].cycle, 7u);
  EXPECT_EQ(events[1].cycle, 8u);
  EXPECT_EQ(events[2].cycle, 9u);
  // Eviction must not change the digest: it covers the whole stream.
  EXPECT_EQ(small.digest(), big.digest());
}

TEST(Tracer, DigestIsOrderAndValueSensitive) {
  Tracer a;
  a.configure(enabled_config(16));
  Tracer b;
  b.configure(enabled_config(16));
  a.record(1, TraceEventType::kFlitInject, 1, 2, 3);
  a.record(2, TraceEventType::kFlitHop, 4, 5, 6);
  b.record(2, TraceEventType::kFlitHop, 4, 5, 6);
  b.record(1, TraceEventType::kFlitInject, 1, 2, 3);
  EXPECT_NE(a.digest(), b.digest());

  Tracer c;
  c.configure(enabled_config(16));
  c.record(1, TraceEventType::kFlitInject, 1, 2, 4);  // c differs
  c.record(2, TraceEventType::kFlitHop, 4, 5, 6);
  EXPECT_NE(a.digest(), c.digest());
}

TEST(Tracer, ConfigureResetsStreamAndDigest) {
  Tracer t;
  t.configure(enabled_config(4));
  const std::uint64_t empty_digest = t.digest();
  t.record(1, TraceEventType::kFlitDrop, 1, 1, 1);
  EXPECT_NE(t.digest(), empty_digest);
  t.configure(enabled_config(4));
  EXPECT_EQ(t.recorded(), 0u);
  EXPECT_TRUE(t.events().empty());
  EXPECT_EQ(t.digest(), empty_digest);
}

TEST(Tracer, ConfigureValidates) {
  Tracer t;
  TraceConfig bad;
  bad.enabled = true;
  bad.ring_capacity = 0;
  EXPECT_THROW(t.configure(bad), std::invalid_argument);
}

TEST(TraceEventType, NamesCoverEveryType) {
  for (std::size_t i = 0; i < kTraceEventTypeCount; ++i) {
    const char* name = to_string(static_cast<TraceEventType>(i));
    ASSERT_NE(name, nullptr);
    EXPECT_GT(std::string(name).size(), 0u) << "type " << i;
  }
  EXPECT_STREQ(to_string(TraceEventType::kFlitInject), "flit-inject");
  EXPECT_STREQ(to_string(TraceEventType::kDvfsDecision), "dvfs-decision");
}

}  // namespace
}  // namespace snnmap::obs
