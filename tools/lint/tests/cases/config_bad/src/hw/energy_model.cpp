// Fixture: "energy.uncovered_pj" never appears in the round-trip test.
#include "hw/energy_model.hpp"

namespace fixture {

void from_config(const Config& config, Model& m) {
  m.pj = config.double_or("energy.uncovered_pj", m.pj);
}

void to_config(const Model& m, Config& config) {
  config.set("energy.uncovered_pj", std::to_string(m.pj));
}

}  // namespace fixture
