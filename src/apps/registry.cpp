#include "apps/registry.hpp"

#include <stdexcept>

#include "apps/digit_recognition.hpp"
#include "apps/edge_detection.hpp"
#include "apps/heartbeat.hpp"
#include "apps/hello_world.hpp"
#include "apps/image_smoothing.hpp"
#include "apps/synthetic.hpp"

namespace snnmap::apps {

const std::vector<AppInfo>& realistic_apps() {
  static const std::vector<AppInfo> kApps = {
      {"HW", "hello world", "Feedforward (117, 9)",
       [](std::uint64_t seed) {
         HelloWorldConfig c;
         c.seed = seed;
         return build_hello_world(c);
       }},
      {"IS", "image smoothing", "Feedforward (1024, 1024)",
       [](std::uint64_t seed) {
         ImageSmoothingConfig c;
         c.seed = seed;
         return build_image_smoothing(c);
       }},
      {"HD", "handwritten digit", "Unsupervised, recurrent (250, 250)",
       [](std::uint64_t seed) {
         DigitRecognitionConfig c;
         c.seed = seed;
         return build_digit_recognition(c);
       }},
      {"HE", "heartbeat estimation", "Unsupervised, LSM (64, 16)",
       [](std::uint64_t seed) {
         HeartbeatConfig c;
         c.seed = seed;
         return build_heartbeat(c);
       }},
  };
  return kApps;
}

namespace {

/// Extra (non-Table-I) applications reachable by name.
const std::vector<AppInfo>& extra_apps() {
  static const std::vector<AppInfo> kApps = {
      {"ED", "edge detection", "Feedforward DoG (1024, 1024)",
       [](std::uint64_t seed) {
         EdgeDetectionConfig c;
         c.seed = seed;
         return build_edge_detection(c);
       }},
  };
  return kApps;
}

}  // namespace

snn::SnnGraph build_app(const std::string& name, std::uint64_t seed) {
  for (const auto& app : realistic_apps()) {
    if (name == app.name || name == app.full_name) return app.build(seed);
  }
  for (const auto& app : extra_apps()) {
    if (name == app.name || name == app.full_name) return app.build(seed);
  }
  // Fall through to synthetic MxN names.
  SyntheticConfig config = parse_synthetic_name(name);  // throws if unknown
  config.seed = seed;
  return build_synthetic(config);
}

bool is_known_app(const std::string& name) {
  for (const auto& app : realistic_apps()) {
    if (name == app.name || name == app.full_name) return true;
  }
  for (const auto& app : extra_apps()) {
    if (name == app.name || name == app.full_name) return true;
  }
  try {
    parse_synthetic_name(name);
    return true;
  } catch (const std::invalid_argument&) {
    return false;
  }
}

}  // namespace snnmap::apps
