// Example 7: closed-loop co-simulation fidelity across partitioners.
//
// The open-loop flow scores a mapping by latency and energy; the closed
// loop measures what congestion does to the *dynamics*.  This demo maps the
// synthetic 2x120 workload with three partitioners and sweeps the fabric
// speed (cycles_per_timestep) downward: as the per-step cycle budget
// shrinks, packets start missing their emission window, effective synaptic
// delays stretch, and the spike trains diverge from the ideal-interconnect
// run — at different rates for different mappings, because a mapping with
// fewer/shorter NoC journeys degrades later.  A bounded-receive-queue row
// turns hotspot congestion into outright spike loss.
//
// The second half walks the energy-vs-divergence frontier: per mapper, the
// DVFS policies (fixed / utilization-threshold / deadline-slack) rescale
// the fabric frequency window by window.  At a generous nominal budget the
// fabric idles most of every window, so the scaling policies ratchet down
// to their frequency floor and cut interconnect energy roughly
// quadratically (E/op ~ f^2) while the spike trains stay within a bounded
// divergence of the fixed-frequency run.
//
//   ./build/examples/cosim_fidelity
#include <cstdint>
#include <iostream>
#include <vector>

#include "apps/registry.hpp"
#include "core/batch_eval.hpp"
#include "core/config_io.hpp"
#include "core/framework.hpp"
#include "core/placement.hpp"
#include "util/table.hpp"

int main() {
  using namespace snnmap;

  const std::uint64_t seed = 11;
  const std::string workload = "2x120";
  const snn::SnnGraph graph = apps::build_app(workload, seed);
  const apps::AppNetwork app_net = apps::build_app_network(workload, seed);

  auto arch = hw::Architecture::sized_for(graph.neuron_count(), 64,
                                          hw::InterconnectKind::kTree);
  std::cout << "workload: " << workload << " (" << graph.neuron_count()
            << " neurons, " << graph.total_spikes() << " spikes over "
            << graph.duration_ms() << " ms)\ndevice:   " << arch.describe()
            << "\n\n";

  const std::vector<core::PartitionerKind> mappers = {
      core::PartitionerKind::kPacman,
      core::PartitionerKind::kNeutrams,
      core::PartitionerKind::kPso,
  };
  const std::vector<std::uint32_t> budgets = {1024, 64, 32, 16, 8};

  // One scenario per (mapper, cycles_per_timestep); the batch evaluator
  // fans them across the pool, each with its same-seed ideal baseline.
  std::vector<core::CoSimScenario> scenarios;
  std::vector<core::CoSimScenario> frontier_bases;
  for (const auto mapper : mappers) {
    core::MappingFlowConfig flow;
    flow.arch = arch;
    flow.partitioner = mapper;
    flow.seed = seed;
    flow.pso.swarm_size = 24;
    flow.pso.iterations = 24;
    core::Partition partition = core::run_partitioner(graph, flow);

    noc::Topology topology = noc::Topology::for_architecture(arch);
    core::CoSimScenario base{
        .build = app_net.build,
        .partition = std::move(partition),
        .placement = core::identity_placement(arch.crossbar_count, topology),
        .topology = std::move(topology),
        .config = {},
        .with_ideal_baseline = true};
    base.config.snn = app_net.sim;
    frontier_bases.push_back(base);
    for (const std::uint32_t cpt : budgets) {
      core::CoSimScenario sc = base;
      sc.config.cycles_per_timestep = cpt;
      scenarios.push_back(std::move(sc));
    }
  }

  core::BatchCoSimEvaluator evaluator;
  const auto outcomes = evaluator.run_all(std::move(scenarios));

  util::Table table({"mapper", "cycles/step", "late copies", "miss %",
                     "mean transit", "divergence %"});
  for (std::size_t m = 0; m < mappers.size(); ++m) {
    for (std::size_t b = 0; b < budgets.size(); ++b) {
      const auto& o = outcomes[m * budgets.size() + b];
      table.begin_row();
      table.cell(core::to_string(mappers[m]));
      table.cell(static_cast<std::size_t>(budgets[b]));
      table.cell(static_cast<std::size_t>(o.result.fidelity.deadline_misses +
                                          o.result.fidelity.undelivered));
      table.cell(util::format_double(
          o.result.fidelity.miss_fraction() * 100.0, 2));
      table.cell(util::format_double(
          o.result.fidelity.transit_cycles.mean(), 1));
      table.cell(util::format_double(o.divergence.fraction() * 100.0, 3));
    }
  }
  std::cout << table.to_ascii();

  // --- DVFS energy-vs-divergence frontier, per mapper -------------------
  // Nominal budget 1024 cycles/step leaves the fabric mostly idle: the
  // scaling policies ratchet the frequency to the floor and the per-event
  // energy drops quadratically, while spikes still land in their windows.
  const std::vector<cosim::DvfsPolicy> policies = [] {
    std::vector<cosim::DvfsPolicy> p(3);
    p[0].kind = cosim::DvfsPolicyKind::kFixed;
    p[1].kind = cosim::DvfsPolicyKind::kUtilizationThreshold;
    p[2].kind = cosim::DvfsPolicyKind::kDeadlineSlack;
    return p;
  }();
  std::cout << "\nDVFS frontier (nominal 1024 cycles/step, energy scale ~ "
               "f^2, floor f/4):\n";
  util::Table frontier({"mapper", "policy", "fabric E (uJ)", "vs fixed %",
                        "mean f/f0", "divergence %", "EDP (uJ*cyc)"});
  for (std::size_t m = 0; m < mappers.size(); ++m) {
    core::CoSimScenario base = frontier_bases[m];
    base.config.cycles_per_timestep = 1024;
    const auto dvfs_outcomes = evaluator.run_dvfs_sweep(base, policies);
    const double fixed_energy =
        dvfs_outcomes[0].result.fidelity.fabric_energy_pj;
    for (std::size_t p = 0; p < policies.size(); ++p) {
      const auto& o = dvfs_outcomes[p];
      const auto& fid = o.result.fidelity;
      frontier.begin_row();
      frontier.cell(core::to_string(mappers[m]));
      frontier.cell(cosim::to_string(policies[p].kind));
      frontier.cell(util::format_double(fid.fabric_energy_pj * 1e-6, 3));
      frontier.cell(util::format_double(
          fixed_energy > 0.0
              ? fid.fabric_energy_pj / fixed_energy * 100.0
              : 100.0,
          1));
      frontier.cell(util::format_double(fid.freq_scale.mean(), 3));
      frontier.cell(
          util::format_double(o.divergence.fraction() * 100.0, 3));
      frontier.cell(
          util::format_double(fid.energy_delay_product() * 1e-6, 2));
    }
  }
  std::cout << frontier.to_ascii();

  // Bounded receive queue at the most congested budget: hotspot crossbars
  // start refusing copies, so congestion becomes spike *loss*.
  core::MappingFlowConfig flow;
  flow.arch = arch;
  flow.partitioner = core::PartitionerKind::kPacman;
  flow.seed = seed;
  noc::Topology topology = noc::Topology::for_architecture(arch);
  core::CoSimScenario bounded{
      .build = app_net.build,
      .partition = core::run_partitioner(graph, flow),
      .placement = core::identity_placement(arch.crossbar_count, topology),
      .topology = std::move(topology),
      .config = {},
      .with_ideal_baseline = true};
  bounded.config.snn = app_net.sim;
  bounded.config.cycles_per_timestep = budgets.back();
  bounded.config.receive_queue_depth = 2;
  const auto dropped = evaluator.run_all({bounded});
  const auto& fd = dropped[0].result.fidelity;
  std::cout << "\nbounded receive queue (depth 2, " << budgets.back()
            << " cycles/step, pacman): " << fd.receive_drops
            << " copies dropped, divergence "
            << util::format_double(dropped[0].divergence.fraction() * 100.0, 3)
            << " %\n";
  return 0;
}
