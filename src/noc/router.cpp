#include "noc/router.hpp"

#include <stdexcept>

namespace snnmap::noc {

Router::Router(RouterId id, std::uint32_t port_count,
               std::uint32_t buffer_depth)
    : id_(id), port_count_(port_count), buffer_depth_(buffer_depth) {
  if (buffer_depth_ == 0) {
    throw std::invalid_argument("Router: buffer depth must be >= 1");
  }
  if (port_count_ + 1 > 64) {
    // occupied_ is a 64-bit mask over port_count + 1 input FIFOs.
    throw std::invalid_argument("Router: too many ports for input mask");
  }
  slots_.resize(static_cast<std::size_t>(port_count_) * buffer_depth_);
  ring_head_.assign(port_count_, 0);
  ring_size_.assign(port_count_, 0);
  rr_.assign(port_count_ + 1, 0);
}

}  // namespace snnmap::noc
