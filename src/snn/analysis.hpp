// Spike-train analysis utilities: PSTH, Fano factor, pairwise spike-time
// correlation.  Used by the application property tests to validate that the
// workload generators produce biologically plausible statistics (Poisson
// inputs, beat-locked bursts, rate-coded images), and available to users
// examining simulation output.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "snn/spike_train.hpp"

namespace snnmap::snn {

/// Peri-stimulus time histogram: spike counts in consecutive `bin_ms` bins
/// over [0, duration_ms), summed across all given trains.
std::vector<std::uint64_t> psth(const std::vector<SpikeTrain>& trains,
                                TimeMs duration_ms, double bin_ms);

/// Fano factor of windowed spike counts (variance / mean over windows of
/// `window_ms`); ~1 for Poisson firing, <1 regular, >1 bursty.
/// Returns 0 when undefined (no spikes or a single window).
double fano_factor(const SpikeTrain& train, TimeMs duration_ms,
                   double window_ms);

/// Pearson correlation of two trains' binned spike counts; in [-1, 1],
/// 0 when undefined (constant counts).
double spike_count_correlation(const SpikeTrain& a, const SpikeTrain& b,
                               TimeMs duration_ms, double bin_ms);

/// Population synchrony index: variance of the population-summed binned
/// rate divided by the sum of per-train variances (Golomb's chi^2-like
/// measure, in [0, ~1]; 1 = perfectly synchronized).
double synchrony_index(const std::vector<SpikeTrain>& trains,
                       TimeMs duration_ms, double bin_ms);

}  // namespace snnmap::snn
